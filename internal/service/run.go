package service

import (
	"bbwfsim/internal/adapt"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sched"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
	"bbwfsim/internal/workloads"
)

// Execute evaluates one validated request and returns the canonical
// result-document bytes. It is a pure function of the request: every
// piece of simulation state — workflow, platform, engine, RNG streams —
// is built from the request alone and torn down before returning, so the
// same request always yields byte-identical output. bbvet registers
// Execute as a determinism-taint sink to machine-check that claim: the
// HTTP layer above may read the wall clock, nothing reachable from here
// may.
//
// A request with workflow kind "panic" panics — that is its contract (see
// KindPanic); the server's worker recovery converts it to a structured
// 500.
func Execute(req *Request) ([]byte, error) {
	n := req.Normalized()
	if n.Sched != nil {
		return executeSched(&n)
	}
	return executeRun(&n)
}

func executeRun(req *Request) ([]byte, error) {
	wf, err := buildWorkflow(&req.Workflow, req.Seed)
	if err != nil {
		return nil, err
	}
	cfg, ok := platform.Presets(req.Platform.Nodes)[req.Platform.Preset]
	if !ok {
		return nil, badField("platform.preset", "unknown preset %q", req.Platform.Preset)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	opts := core.RunOptions{
		StagedFraction:           req.Run.StagedFraction,
		IntermediatesToBB:        req.Run.IntermediatesToBB,
		CoresPerTask:             req.Run.CoresPerTask,
		PrePlaceInputs:           req.Run.PrePlaceInputs,
		EvictAfterLastRead:       req.Run.EvictAfterLastRead,
		EnforcePrivateVisibility: req.Run.EnforcePrivateVisibility,
		BBFallback:               req.Run.BBFallback,
		// Counting mode: the service never ships traces, so it never
		// retains them — memory per request stays bounded at any DAG size.
		TraceMode: trace.Counting,
	}
	if opts.NodePolicy, err = nodePolicy(req.Run.NodePolicy); err != nil {
		return nil, err
	}
	if opts.OrderPolicy, err = orderPolicy(req.Run.OrderPolicy); err != nil {
		return nil, err
	}
	if c := req.Ckpt; c != nil {
		tier := ckpt.Target(c.Tier)
		opts.Checkpoint = ckpt.Policy{
			Interval:   c.IntervalSeconds,
			Target:     tier,
			Drain:      c.Drain,
			DrainDelay: c.DrainDelaySeconds,
			MinSize:    units.Bytes(c.MinSizeMiB * float64(units.MiB)),
		}
	}
	if a := req.Adapt; a != nil {
		opts.Adapt = adapt.Policy{
			SpillHighWater:    a.SpillHighWater,
			SpillLowWater:     a.SpillLowWater,
			ReplicateOnFault:  a.ReplicateOnFault,
			ReplicationBudget: a.ReplicationBudget,
			DegradedFallback:  a.DegradedFallback,
		}
	}
	if f := req.Faults; f != nil {
		fc := faults.Config{Seed: req.Seed}
		if f.CrashMeanSeconds > 0 {
			fc.TaskCrash = &faults.CrashProcess{Arrival: faults.Exp(f.CrashMeanSeconds), Budget: f.CrashBudget}
		}
		if f.NodeFailMeanSeconds > 0 {
			fc.NodeFailure = &faults.NodeProcess{Arrival: faults.Exp(f.NodeFailMeanSeconds), MTTR: f.NodeMTTRSeconds, Budget: f.NodeFailBudget}
		}
		if f.BBRejectProb > 0 {
			fc.BBReject = &faults.RejectPolicy{Prob: f.BBRejectProb}
		}
		inj, err := faults.New(fc)
		if err != nil {
			return nil, err
		}
		opts.Faults = inj
		opts.Retry = exec.RetryPolicy{MaxRetries: f.MaxRetries}
	}
	res, err := sim.Run(wf, opts)
	if err != nil {
		return nil, err
	}
	return core.EncodeResult(res)
}

func executeSched(req *Request) ([]byte, error) {
	cfg, ok := platform.Presets(req.Platform.Nodes)[req.Platform.Preset]
	if !ok {
		return nil, badField("platform.preset", "unknown preset %q", req.Platform.Preset)
	}
	cluster := sched.ClusterFromPlatform(cfg)
	if req.Sched.BBCapacityGiB > 0 {
		cluster.BBCapacity = units.Bytes(req.Sched.BBCapacityGiB * float64(units.GiB))
	}
	maxNodes := 16
	if cluster.Nodes < maxNodes {
		maxNodes = cluster.Nodes
	}
	jobs, err := workloads.Campaign(workloads.CampaignSpec{
		Jobs: req.Sched.Jobs, Seed: req.Seed, MaxNodes: maxNodes,
	})
	if err != nil {
		return nil, err
	}
	scfg := sched.Config{Cluster: cluster, Policy: req.Sched.Policy, Jobs: jobs}
	if f := req.Faults; f != nil && f.NodeFailMeanSeconds > 0 {
		scfg.Faults = &sched.FaultPlan{
			Seed: req.Seed,
			Node: &faults.NodeProcess{Arrival: faults.Exp(f.NodeFailMeanSeconds), MTTR: f.NodeMTTRSeconds, Budget: f.NodeFailBudget},
		}
	}
	sres, err := sched.Run(scfg)
	if err != nil {
		return nil, err
	}
	return core.EncodeResult(sres.Core())
}

func buildWorkflow(w *WorkflowSpec, seed int64) (*workflow.Workflow, error) {
	switch w.Kind {
	case KindGen:
		return workloads.Scale(workloads.ScaleSpec{
			Topology: w.Topology, Tasks: w.Tasks, Width: w.Width, Seed: seed,
		})
	case KindSWarp:
		return swarp.New(swarp.Params{Pipelines: w.Pipelines})
	case KindGenomes:
		return genomes.New(genomes.Params{Chromosomes: w.Chromosomes})
	case KindPanic:
		panic("service: panic-kind workflow evaluated (test hook)")
	}
	return nil, badField("workflow.kind", "unknown kind %q", w.Kind)
}

func nodePolicy(s string) (exec.NodePolicy, error) {
	switch s {
	case "", "first-fit":
		return exec.NodeFirstFit, nil
	case "least-loaded":
		return exec.NodeLeastLoaded, nil
	case "round-robin":
		return exec.NodeRoundRobin, nil
	}
	return 0, badField("run.node_policy", "unknown policy %q", s)
}

func orderPolicy(s string) (exec.OrderPolicy, error) {
	switch s {
	case "", "fifo":
		return exec.OrderFIFO, nil
	case "largest-work":
		return exec.OrderLargestWork, nil
	case "critical-path":
		return exec.OrderCriticalPath, nil
	}
	return 0, badField("run.order_policy", "unknown policy %q", s)
}
