package service

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Journal is the cache's crash-safe persistence: an append-only file of
// length-prefixed, checksummed (hash, result-bytes) records. The format
// per record is
//
//	uint32  payload length (big endian)
//	32 B    raw SHA-256 request hash
//	uint32  CRC32 (IEEE) of the payload
//	[]byte  payload (canonical result document)
//
// Open replays the file sequentially and stops at the first record that
// fails its length or checksum — a torn final append after a crash — then
// truncates the file there, so a restarted daemon serves every durably
// written result and silently drops the torn tail instead of refusing to
// start or serving corrupt bytes.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	restored map[string][]byte
}

const journalHashLen = 32

// OpenJournal opens (creating if absent) the journal at path, validates
// every record, and truncates past the first corruption.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	restored, good, err := replayJournal(f)
	if err != nil {
		return nil, closeOnErr(f, err)
	}
	if err := f.Truncate(good); err != nil {
		return nil, closeOnErr(f, fmt.Errorf("service: truncating journal past corruption: %w", err))
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, closeOnErr(f, err)
	}
	return &Journal{f: f, restored: restored}, nil
}

// closeOnErr closes f on an open-path failure; the close error is joined
// rather than dropped so emitter error checking stays honest.
func closeOnErr(f *os.File, err error) error {
	if cerr := f.Close(); cerr != nil {
		return fmt.Errorf("%w (and closing journal: %v)", err, cerr)
	}
	return err
}

// replayJournal reads records until EOF or the first invalid one and
// returns the valid entries plus the byte offset of the last good record
// boundary. I/O errors (as opposed to torn records) are returned as
// errors.
func replayJournal(f *os.File) (map[string][]byte, int64, error) {
	restored := make(map[string][]byte)
	var good int64
	header := make([]byte, 4+journalHashLen+4)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return restored, good, nil // clean end or torn header
			}
			return nil, 0, err
		}
		n := binary.BigEndian.Uint32(header[:4])
		if n > MaxJournalPayload {
			return restored, good, nil // corrupt length field
		}
		hash := header[4 : 4+journalHashLen]
		sum := binary.BigEndian.Uint32(header[4+journalHashLen:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return restored, good, nil // torn payload
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return restored, good, nil // corrupt payload
		}
		restored[hex.EncodeToString(hash)] = payload
		good += int64(len(header)) + int64(n)
	}
}

// MaxJournalPayload bounds a single journal record; a length field above
// it marks the record (and everything after) corrupt.
const MaxJournalPayload = 64 << 20

// Restored returns the entries replayed at open time (hex hash →
// payload). The map is owned by the journal; callers read it once at
// startup.
func (j *Journal) Restored() map[string][]byte {
	return j.restored
}

// Append durably queues one record. Failures are returned but the journal
// stays usable: a failed append leaves the file positioned wherever the
// OS left it, and the next Open truncates any torn tail.
func (j *Journal) Append(hash string, payload []byte) error {
	raw, err := hex.DecodeString(hash)
	if err != nil || len(raw) != journalHashLen {
		return fmt.Errorf("service: journal hash %q is not a hex SHA-256", hash)
	}
	if len(payload) > MaxJournalPayload {
		return fmt.Errorf("service: journal payload %d bytes exceeds cap %d", len(payload), MaxJournalPayload)
	}
	rec := make([]byte, 0, 4+journalHashLen+4+len(payload))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, raw...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(rec)
	return err
}

// Sync flushes buffered appends to stable storage — the drain sequence
// calls this before the process exits.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		return closeOnErr(j.f, err)
	}
	return j.f.Close()
}
