package service

import "math/rand"

// SeededRequest generates a valid, always-evaluable request from a seed —
// the service-layer twin of the invariant harness's RandomCase: the same
// seed always yields the same request, and the space deliberately mixes
// workflow kinds, platforms, run knobs, checkpointing, adaptation,
// faults, and sched campaigns so 100 seeds sweep every Execute path.
// Sizes are kept small (tens of tasks, hundreds of sched jobs) so a
// 100-seed replay stays test-budget friendly.
func SeededRequest(seed int64) Request {
	rng := rand.New(rand.NewSource(seed))
	presets := []string{"cori-private", "cori-striped", "summit"}
	req := Request{
		Platform: PlatformSpec{
			Preset: presets[rng.Intn(len(presets))],
			Nodes:  1 + rng.Intn(4),
		},
		Seed: seed,
	}

	// One request in five is a sched campaign; the rest single runs
	// spread across the three workflow kinds.
	switch rng.Intn(5) {
	case 0:
		policies := []string{"fcfs", "easy", "plan", "maxbb", "maxparallel", "directio"}
		req.Sched = &SchedSpec{
			Policy: policies[rng.Intn(len(policies))],
			Jobs:   50 + rng.Intn(150),
		}
		if rng.Intn(3) == 0 {
			req.Faults = &FaultSpec{
				NodeFailMeanSeconds: 3600,
				NodeMTTRSeconds:     600,
				NodeFailBudget:      2,
			}
		}
		return req
	case 1:
		req.Workflow = WorkflowSpec{Kind: KindSWarp, Pipelines: 1 + rng.Intn(4)}
	case 2:
		req.Workflow = WorkflowSpec{Kind: KindGenomes, Chromosomes: 1 + rng.Intn(4)}
	default:
		topologies := []string{"chain", "forkjoin", "montage"}
		req.Workflow = WorkflowSpec{
			Kind:     KindGen,
			Topology: topologies[rng.Intn(len(topologies))],
			Tasks:    10 + rng.Intn(90),
			Width:    4 + rng.Intn(12),
		}
	}

	req.Run = RunSpec{
		StagedFraction:    float64(rng.Intn(5)) / 4,
		IntermediatesToBB: rng.Intn(2) == 0,
		BBFallback:        true,
	}
	switch rng.Intn(3) {
	case 0:
		req.Run.NodePolicy = "least-loaded"
	case 1:
		req.Run.OrderPolicy = "critical-path"
	}
	if rng.Intn(4) == 0 {
		req.Ckpt = &CkptSpec{IntervalSeconds: 30 + 30*float64(rng.Intn(4)), Tier: []string{"bb", "pfs"}[rng.Intn(2)]}
	}
	if rng.Intn(4) == 0 {
		req.Adapt = &AdaptSpec{SpillHighWater: 0.8, ReplicateOnFault: true}
	}
	if rng.Intn(4) == 0 {
		req.Faults = &FaultSpec{
			NodeFailMeanSeconds: 1800,
			NodeMTTRSeconds:     300,
			NodeFailBudget:      1,
			BBRejectProb:        0.05,
			MaxRetries:          3,
		}
	}
	return req
}
