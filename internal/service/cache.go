package service

import (
	"context"
	"errors"
	"sync"
)

// ErrFillFailed is wrapped around a filler's failure when waiters observe
// it; the waiters never retry themselves — the entry is gone by the time
// they wake, so their caller may.
var ErrFillFailed = errors.New("service: cache fill failed")

// entry is one in-flight or completed cache slot. ready is closed exactly
// once, after which data/err are immutable.
type entry struct {
	ready chan struct{}
	data  []byte
	err   error
}

// Cache is the content-addressed result cache: canonical request hash →
// canonical result bytes, with single-flight fills (N concurrent
// identical requests run one simulation) and a FIFO entry bound.
//
// Failure containment is strict: only successful fills stay cached.
// A filler that errors or panics removes its entry on the way out, so a
// crashing simulation can never poison the cache — the next identical
// request recomputes from scratch.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string // completed-entry insertion order, for FIFO eviction
	cap     int
	journal *Journal // optional; appended to on successful cold fills
}

// NewCache builds a cache bounded to capacity completed entries
// (capacity <= 0 means unbounded). If journal is non-nil, its restored
// entries seed the cache and every cold fill is appended to it.
func NewCache(capacity int, journal *Journal) *Cache {
	c := &Cache{entries: make(map[string]*entry), cap: capacity, journal: journal}
	if journal != nil {
		for hash, data := range journal.Restored() {
			e := &entry{ready: make(chan struct{}), data: data}
			close(e.ready)
			c.entries[hash] = e
			c.order = append(c.order, hash)
		}
		c.evictOverflow()
	}
	return c
}

// Len reports the number of cached (or in-flight) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// GetOrFill returns the bytes cached under hash, running fill exactly
// once across all concurrent callers of the same hash. The boolean
// reports a hit (true = served without calling fill in this request).
//
// The filler runs on the calling goroutine and is NOT cancelled when ctx
// fires — a simulation point is finite and its result stays useful to
// every later request — but waiters stop waiting and return ctx.Err().
// If fill panics, the entry is removed and the panic propagates to the
// caller (the server's worker recovery turns it into a 500).
func (c *Cache) GetOrFill(ctx context.Context, hash string, fill func() ([]byte, error)) ([]byte, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[hash]; ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
			if e.err != nil {
				return nil, false, e.err
			}
			return e.data, true, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[hash] = e
	c.mu.Unlock()

	filled := false
	defer func() {
		if filled {
			return
		}
		// fill panicked: release waiters with a failure and drop the
		// entry so the panic cannot poison the cache.
		e.err = ErrFillFailed
		c.remove(hash)
		close(e.ready)
	}()
	data, err := fill()
	filled = true
	if err != nil {
		e.err = err
		c.remove(hash)
		close(e.ready)
		return nil, false, err
	}
	e.data = data
	c.commit(hash)
	close(e.ready)
	if c.journal != nil {
		// Journal failures degrade durability, not correctness: the entry
		// stays served from memory either way.
		c.journal.Append(hash, data)
	}
	return data, false, nil
}

// Get returns the completed bytes under hash without filling.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.ready:
	default:
		return nil, false // still filling
	}
	if e.err != nil {
		return nil, false
	}
	return e.data, true
}

func (c *Cache) remove(hash string) {
	c.mu.Lock()
	delete(c.entries, hash)
	c.mu.Unlock()
}

// commit records a successful fill in FIFO order and evicts the oldest
// completed entries beyond capacity.
func (c *Cache) commit(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order = append(c.order, hash)
	c.evictOverflow()
}

// evictOverflow is called with mu held.
func (c *Cache) evictOverflow() {
	if c.cap <= 0 {
		return
	}
	for len(c.order) > c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
}
