package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testHash(s string) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(s)))
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(testHash(fmt.Sprint(i)), []byte(fmt.Sprintf("result %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Error(err)
		}
	}()
	restored := j2.Restored()
	if len(restored) != 5 {
		t.Fatalf("restored %d entries, want 5", len(restored))
	}
	if got := restored[testHash("3")]; !bytes.Equal(got, []byte("result 3")) {
		t.Errorf("entry 3 = %q", got)
	}
}

func TestJournalTruncatesPastCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(testHash(fmt.Sprint(i)), []byte(fmt.Sprintf("result %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte inside the third record: records 0 and 1 stay
	// valid, record 2 fails its CRC, record 3 (though intact on disk) is
	// unreachable past the corruption and must be dropped too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := 4 + journalHashLen + 4 + len("result 0")
	corruptAt := 2*recLen + 4 + journalHashLen + 4 // first payload byte of record 2
	data[corruptAt] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	restored := j2.Restored()
	if len(restored) != 2 {
		t.Fatalf("restored %d entries past corruption, want 2", len(restored))
	}
	// The file was truncated at the corruption boundary, and the journal
	// accepts appends from there.
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(2*recLen) {
		t.Fatalf("file size %d after truncation, want %d (err %v)", fi.Size(), 2*recLen, err)
	}
	if err := j2.Append(testHash("new"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j3.Close(); err != nil {
			t.Error(err)
		}
	}()
	if len(j3.Restored()) != 3 {
		t.Fatalf("restored %d entries after post-corruption append, want 3", len(j3.Restored()))
	}
}

func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testHash("a"), []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testHash("b"), []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: cut the final record short.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if len(j2.Restored()) != 1 {
		t.Fatalf("restored %d entries with a torn tail, want 1", len(j2.Restored()))
	}
}

func TestCacheRestoresFromJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(0, j)
	want := []byte("expensive result")
	if _, _, err := c.GetOrFill(context.Background(), testHash("req"), func() ([]byte, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Error(err)
		}
	}()
	c2 := NewCache(0, j2)
	data, hit, err := c2.GetOrFill(context.Background(), testHash("req"), func() ([]byte, error) {
		t.Fatal("restored entry recomputed")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(data, want) {
		t.Fatalf("restored entry: data=%q hit=%v err=%v", data, hit, err)
	}
}
