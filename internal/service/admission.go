package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrShed is returned when the admission queue is full: the request is
// rejected immediately (HTTP 429 + Retry-After) instead of queueing
// without bound — bounded queues are what keep a saturated daemon's
// latency finite.
var ErrShed = errors.New("service: admission queue full")

// Gate is the two-stage admission controller: a bounded wait queue in
// front of a max-in-flight execution gate. A request first claims a queue
// token (non-blocking — none free means shed), then waits for an
// execution slot (blocking, cancellable), then runs. Campaigns claim one
// queue token for the whole sweep but one execution slot per point, so a
// big campaign shares the worker pool fairly with single runs instead of
// monopolizing it.
type Gate struct {
	queue chan struct{} // buffered to queue capacity
	slots chan struct{} // buffered to max-in-flight
	depth atomic.Int64  // requests holding a queue token but not yet done
	busy  atomic.Int64  // requests holding an execution slot
}

// NewGate builds a gate admitting at most inFlight concurrent executions
// and queueing at most queued further requests beyond those executing.
// Both must be positive.
func NewGate(inFlight, queued int) *Gate {
	if inFlight < 1 {
		inFlight = 1
	}
	if queued < 0 {
		queued = 0
	}
	return &Gate{
		queue: make(chan struct{}, inFlight+queued),
		slots: make(chan struct{}, inFlight),
	}
}

// Enter claims a queue token or sheds. The caller must Leave() exactly
// once after a successful Enter.
func (g *Gate) Enter() error {
	select {
	case g.queue <- struct{}{}:
		g.depth.Add(1)
		return nil
	default:
		return ErrShed
	}
}

// Leave releases the queue token claimed by Enter.
func (g *Gate) Leave() {
	g.depth.Add(-1)
	<-g.queue
}

// Acquire blocks until an execution slot frees or ctx fires. The caller
// must Release() exactly once after a successful Acquire.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.busy.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees the slot claimed by Acquire.
func (g *Gate) Release() {
	g.busy.Add(-1)
	<-g.slots
}

// QueueDepth is the number of admitted requests not yet finished
// (queued + executing); InFlight is the number currently executing.
func (g *Gate) QueueDepth() int64 { return g.depth.Load() }
func (g *Gate) InFlight() int64   { return g.busy.Load() }
