package service

import (
	"context"
	"encoding/json"
	"fmt"
)

// CampaignDoc is the wire form of a campaign response: one point per
// seed, in seed-list order regardless of completion order — the same
// index-ordered merge discipline internal/runner gives every campaign in
// this repository, so the document is byte-identical at any fan-out.
type CampaignDoc struct {
	Schema int            `json:"schema"`
	Points []CampaignItem `json:"points"`
}

// CampaignItem pairs a seed with its canonical result document.
type CampaignItem struct {
	Seed   int64           `json:"seed"`
	Result json.RawMessage `json:"result"`
}

// CampaignDocSchema is the current CampaignDoc version.
const CampaignDocSchema = 1

// EncodeCampaign assembles the canonical campaign document from per-seed
// result documents (as produced by Execute), indented with a trailing
// newline like every canonical document in the repository.
func EncodeCampaign(seeds []int64, results [][]byte) ([]byte, error) {
	if len(seeds) != len(results) {
		return nil, fmt.Errorf("service: %d seeds but %d results", len(seeds), len(results))
	}
	doc := CampaignDoc{Schema: CampaignDocSchema, Points: make([]CampaignItem, len(seeds))}
	for i, r := range results {
		doc.Points[i] = CampaignItem{Seed: seeds[i], Result: json.RawMessage(r)}
	}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ExecuteCampaign evaluates every point of a campaign serially through an
// optional cache — the offline twin of the /v1/campaign endpoint, used by
// `bbsimd -once` and the invariant harness to pin that daemon responses
// are byte-identical to direct evaluation.
func ExecuteCampaign(creq *CampaignRequest, cache *Cache) ([]byte, error) {
	results := make([][]byte, len(creq.Seeds))
	for i, seed := range creq.Seeds {
		preq := creq.Base
		preq.Seed = seed
		var (
			data []byte
			err  error
		)
		if cache != nil {
			hash, herr := preq.CanonicalHash()
			if herr != nil {
				return nil, herr
			}
			data, _, err = cache.GetOrFill(context.Background(), hash, func() ([]byte, error) { return Execute(&preq) })
		} else {
			data, err = Execute(&preq)
		}
		if err != nil {
			return nil, err
		}
		results[i] = data
	}
	return EncodeCampaign(creq.Seeds, results)
}
