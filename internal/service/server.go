package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bbwfsim/internal/metrics"
	"bbwfsim/internal/runner"
)

// Config shapes a Server.
type Config struct {
	// Workers is the max-in-flight execution gate width (and the campaign
	// fan-out); <= 0 picks runner.Jobs(0) = GOMAXPROCS.
	Workers int
	// Queue is how many admitted requests may wait beyond those executing
	// before the gate sheds (default 64).
	Queue int
	// CacheEntries bounds the result cache FIFO (default 1024; <0 means
	// unbounded).
	CacheEntries int
	// Journal, when non-nil, persists cache fills and seeds the cache
	// with its restored entries.
	Journal *Journal
	// DefaultTimeout applies when a request carries no timeout_s;
	// MaxTimeout clamps client-supplied budgets. Defaults: 30 s / 120 s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// PanicHook admits workflow kind "panic" (test-only: proves panic
	// isolation against a live process). Off by default; without it the
	// kind is rejected with 400.
	PanicHook bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runner.Jobs(0)
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	return c
}

// Server is the bbsimd HTTP layer: admission control in front of the
// single-flight cache in front of Execute, with panic isolation,
// deadlines, and drain. It is deliberately thin — everything that decides
// simulation outcomes lives below in Execute, which bbvet keeps
// deterministic; the server only decides who runs, when, and what gets
// remembered.
type Server struct {
	cfg      Config
	cache    *Cache
	gate     *Gate
	mux      *http.ServeMux
	draining atomic.Bool
	inflight sync.WaitGroup

	requestsRun      atomic.Int64
	requestsCampaign atomic.Int64
	hits             atomic.Int64
	sheds            atomic.Int64
	panics           atomic.Int64
	deadlineKills    atomic.Int64
}

// NewServer builds a server from cfg.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries, cfg.Journal),
		gate:  NewGate(cfg.Workers, cfg.Queue),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/run", s.wrap(s.handleRun))
	s.mux.HandleFunc("POST /v1/campaign", s.wrap(s.handleCampaign))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the result cache (tests and the -once path reuse it).
func (s *Server) Cache() *Cache { return s.cache }

// errorKind labels structured error responses.
const (
	kindBadRequest = "bad_request"
	kindShed       = "shed"
	kindDeadline   = "deadline"
	kindPanicErr   = "panic"
	kindDraining   = "draining"
	kindInternal   = "internal"
)

// panicError is a recovered worker panic, carried as an error so the
// single-flight cache can release waiters without caching anything.
type panicError struct{ v any }

func (e *panicError) Error() string { return fmt.Sprintf("service: worker panicked: %v", e.v) }

// wrap is the outermost handler shell: drain rejection, in-flight
// tracking for BeginDrain, and last-resort panic containment so no
// handler bug can take the process down.
func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, kindDraining, "server is draining")
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				writeError(w, http.StatusInternalServerError, kindPanicErr, fmt.Sprintf("handler panicked: %v", rec))
			}
		}()
		h(w, r)
	}
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	// The error body is assembled by hand so a marshal failure cannot
	// recurse into error handling.
	if _, err := fmt.Fprintf(w, "{\n  \"kind\": %q,\n  \"error\": %q\n}\n", kind, msg); err != nil {
		return // client went away; nothing left to do
	}
}

// readBody drains the request body under the schema size cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBytes+1))
	if err != nil {
		return nil, &RequestError{Msg: "reading body: " + err.Error()}
	}
	return body, nil
}

// deadlineCtx derives the request's execution context from its timeout
// budget, clamped to the server's maximum.
func (s *Server) deadlineCtx(r *http.Request, timeoutSeconds float64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutSeconds > 0 {
		d = time.Duration(timeoutSeconds * float64(time.Second))
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// expired reports whether ctx's budget is spent. It consults the
// deadline directly as well as Err() because a sub-microsecond timer may
// not have fired yet even though the budget is long gone.
func expired(ctx context.Context) bool {
	if ctx.Err() != nil {
		return true
	}
	if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
		return true
	}
	return false
}

// guardedFill wraps Execute with panic recovery: a crashing simulation
// becomes a *panicError, which the cache treats like any other failure —
// released to waiters, never cached.
func (s *Server) guardedFill(req *Request) func() ([]byte, error) {
	return func() (b []byte, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				err = &panicError{rec}
			}
		}()
		return Execute(req)
	}
}

// respondErr maps an evaluation error onto the wire.
func (s *Server) respondErr(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	var pe *panicError
	switch {
	case errors.As(err, &reqErr):
		writeError(w, http.StatusBadRequest, kindBadRequest, reqErr.Error())
	case errors.As(err, &pe):
		writeError(w, http.StatusInternalServerError, kindPanicErr, pe.Error())
	case errors.Is(err, context.DeadlineExceeded):
		s.deadlineKills.Add(1)
		writeError(w, http.StatusGatewayTimeout, kindDeadline, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Client went away; status is moot but keep the accounting clean.
		writeError(w, http.StatusRequestTimeout, kindDeadline, "request cancelled")
	default:
		writeError(w, http.StatusInternalServerError, kindInternal, err.Error())
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.respondErr(w, err)
		return
	}
	req, err := ParseRequest(body)
	if err != nil {
		s.respondErr(w, err)
		return
	}
	if req.Workflow.Kind == KindPanic && !s.cfg.PanicHook {
		writeError(w, http.StatusBadRequest, kindBadRequest, "workflow kind \"panic\" requires the server's panic hook")
		return
	}
	s.requestsRun.Add(1)

	if err := s.gate.Enter(); err != nil {
		s.sheds.Add(1)
		writeError(w, http.StatusTooManyRequests, kindShed, "admission queue full")
		return
	}
	defer s.gate.Leave()

	ctx, cancel := s.deadlineCtx(r, req.TimeoutSeconds)
	defer cancel()

	hash, err := req.CanonicalHash()
	if err != nil {
		s.respondErr(w, err)
		return
	}

	// An already-expired budget never serves, not even from cache — the
	// client stopped waiting; spending bytes on it is pure waste.
	if expired(ctx) {
		s.deadlineKills.Add(1)
		writeError(w, http.StatusGatewayTimeout, kindDeadline, "deadline exceeded")
		return
	}
	// Fast path: a completed entry serves without burning a slot.
	if data, ok := s.cache.Get(hash); ok {
		s.hits.Add(1)
		writeResult(w, data, true)
		return
	}
	if err := s.gate.Acquire(ctx); err != nil {
		s.respondErr(w, err)
		return
	}
	data, hit, err := func() ([]byte, bool, error) {
		defer s.gate.Release()
		return s.cache.GetOrFill(ctx, hash, s.guardedFill(req))
	}()
	if err != nil {
		s.respondErr(w, err)
		return
	}
	if hit {
		s.hits.Add(1)
	}
	// The result exists (and is cached) either way; the client only gets
	// it if its deadline hasn't passed — deadline semantics are enforced
	// at point boundaries because the kernel itself is not cancellable.
	if expired(ctx) {
		s.deadlineKills.Add(1)
		writeError(w, http.StatusGatewayTimeout, kindDeadline, "deadline exceeded")
		return
	}
	writeResult(w, data, hit)
}

func writeResult(w http.ResponseWriter, data []byte, hit bool) {
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if _, err := w.Write(data); err != nil {
		return // client disconnected mid-write
	}
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.respondErr(w, err)
		return
	}
	creq, err := ParseCampaignRequest(body)
	if err != nil {
		s.respondErr(w, err)
		return
	}
	if creq.Base.Workflow.Kind == KindPanic && !s.cfg.PanicHook {
		writeError(w, http.StatusBadRequest, kindBadRequest, "workflow kind \"panic\" requires the server's panic hook")
		return
	}
	s.requestsCampaign.Add(1)

	// One queue token covers the whole sweep; each point claims its own
	// execution slot, so campaigns and single runs share the pool fairly.
	if err := s.gate.Enter(); err != nil {
		s.sheds.Add(1)
		writeError(w, http.StatusTooManyRequests, kindShed, "admission queue full")
		return
	}
	defer s.gate.Leave()

	ctx, cancel := s.deadlineCtx(r, creq.Base.TimeoutSeconds)
	defer cancel()

	var hitCount atomic.Int64
	points, err := runner.MapCtx(ctx, s.cfg.Workers, len(creq.Seeds), func(ctx context.Context, i int) ([]byte, error) {
		preq := creq.Base
		preq.Seed = creq.Seeds[i]
		hash, err := preq.CanonicalHash()
		if err != nil {
			return nil, err
		}
		if data, ok := s.cache.Get(hash); ok {
			hitCount.Add(1)
			return data, nil
		}
		if err := s.gate.Acquire(ctx); err != nil {
			return nil, err
		}
		defer s.gate.Release()
		data, hit, err := s.cache.GetOrFill(ctx, hash, s.guardedFill(&preq))
		if hit {
			hitCount.Add(1)
		}
		return data, err
	})
	if err != nil {
		s.respondErr(w, err)
		return
	}
	s.hits.Add(hitCount.Load())
	doc, err := EncodeCampaign(creq.Seeds, points)
	if err != nil {
		s.respondErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d", hitCount.Load()))
	if _, err := w.Write(doc); err != nil {
		return // client disconnected mid-write
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if _, err := io.WriteString(w, "ok\n"); err != nil {
		return
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		if _, err := io.WriteString(w, "draining\n"); err != nil {
			return
		}
		return
	}
	if _, err := io.WriteString(w, "ready\n"); err != nil {
		return
	}
}

// handleMetrics renders the service counters in the repository's
// Prometheus text format. The live counters are atomics (the Collector is
// single-threaded by design); each scrape pours them into a throwaway
// Collector and renders its snapshot, so the deterministic rendering code
// is shared with the simulation side.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := metrics.New("bbsimd", "service")
	c.Add(metrics.ServiceRequestsTotal, metrics.Key{Op: "run"}, float64(s.requestsRun.Load()))
	c.Add(metrics.ServiceRequestsTotal, metrics.Key{Op: "campaign"}, float64(s.requestsCampaign.Load()))
	c.Add(metrics.ServiceCacheHitsTotal, metrics.Key{}, float64(s.hits.Load()))
	c.Add(metrics.ServiceShedsTotal, metrics.Key{}, float64(s.sheds.Load()))
	c.Add(metrics.ServicePanicsTotal, metrics.Key{}, float64(s.panics.Load()))
	c.Add(metrics.ServiceDeadlineKillsTotal, metrics.Key{}, float64(s.deadlineKills.Load()))
	c.GaugeMax(metrics.ServiceQueueDepth, metrics.Key{}, float64(s.gate.QueueDepth()))
	c.GaugeMax(metrics.ServiceInFlight, metrics.Key{}, float64(s.gate.InFlight()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := c.Snapshot().WriteProm(w); err != nil {
		return // client disconnected mid-scrape
	}
}

// Stats is a point-in-time copy of the service counters (tests assert on
// these without scraping /metrics).
type Stats struct {
	RequestsRun, RequestsCampaign       int64
	Hits, Sheds, Panics, DeadlineKills  int64
	QueueDepth, InFlight, CachedEntries int64
}

// Stats snapshots the live counters.
func (s *Server) Stats() Stats {
	return Stats{
		RequestsRun:      s.requestsRun.Load(),
		RequestsCampaign: s.requestsCampaign.Load(),
		Hits:             s.hits.Load(),
		Sheds:            s.sheds.Load(),
		Panics:           s.panics.Load(),
		DeadlineKills:    s.deadlineKills.Load(),
		QueueDepth:       s.gate.QueueDepth(),
		InFlight:         s.gate.InFlight(),
		CachedEntries:    int64(s.cache.Len()),
	}
}

// BeginDrain stops admitting work (readyz flips to 503, handlers reject
// with 503), waits for every in-flight handler to finish or for ctx to
// fire, then flushes the cache journal. Safe to call once; the HTTP
// listener shutdown is the caller's job (http.Server.Shutdown after this
// returns drains keep-alive connections).
func (s *Server) BeginDrain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("service: drain timed out with requests in flight: %w", ctx.Err())
	}
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.Sync(); err != nil {
			return fmt.Errorf("service: flushing cache journal on drain: %w", err)
		}
	}
	return nil
}
