package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

const validRun = `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"cori-private"},"seed":1}`

func TestServerRunAndCacheHit(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	first := postJSON(t, s, "/v1/run", validRun)
	if first.Code != http.StatusOK {
		t.Fatalf("first run: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache = %q, want miss", got)
	}
	second := postJSON(t, s, "/v1/run", validRun)
	if second.Code != http.StatusOK {
		t.Fatalf("second run: %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit bytes differ from cold run")
	}
	// The served bytes are exactly what direct evaluation produces.
	req, err := ParseRequest([]byte(validRun))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Body.Bytes(), direct) {
		t.Error("served bytes differ from direct Execute")
	}
	if st := s.Stats(); st.Hits != 1 || st.RequestsRun != 2 {
		t.Errorf("stats = %+v, want 1 hit of 2 requests", st)
	}
}

func TestServerMalformedRequests(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	for _, body := range []string{
		`{`,
		`{"unknown":1}`,
		`{"workflow":{"kind":"magic"},"platform":{"preset":"cori-private"}}`,
		`{"workflow":{"kind":"gen","topology":"chain","tasks":-1},"platform":{"preset":"summit"}}`,
		``,
	} {
		w := postJSON(t, s, "/v1/run", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, w.Code)
		}
		var resp struct{ Kind, Error string }
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Errorf("body %q: non-JSON error response %q", body, w.Body)
		} else if resp.Kind != kindBadRequest {
			t.Errorf("body %q: kind %q", body, resp.Kind)
		}
	}
}

func TestServerPanicIsolation(t *testing.T) {
	// Without the hook the panic kind is rejected outright.
	s := NewServer(Config{Workers: 1})
	if w := postJSON(t, s, "/v1/run", `{"workflow":{"kind":"panic"},"platform":{"preset":"summit"}}`); w.Code != http.StatusBadRequest {
		t.Fatalf("panic kind without hook: %d, want 400", w.Code)
	}

	// With the hook armed the worker panics; the server answers a
	// structured 500 and keeps serving.
	s = NewServer(Config{Workers: 1, PanicHook: true})
	w := postJSON(t, s, "/v1/run", `{"workflow":{"kind":"panic"},"platform":{"preset":"summit"}}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panic request: %d, want 500", w.Code)
	}
	var resp struct{ Kind string }
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Kind != kindPanicErr {
		t.Fatalf("panic response %q (err %v)", w.Body, err)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Errorf("panics = %d, want 1", st.Panics)
	}
	if st := s.Stats(); st.CachedEntries != 0 {
		t.Error("panic poisoned the cache")
	}
	// The process (and the slot the panicking worker held) survived.
	if after := postJSON(t, s, "/v1/run", validRun); after.Code != http.StatusOK {
		t.Fatalf("run after panic: %d", after.Code)
	}
	if h := postJSON(t, s, "/v1/run", validRun); h.Header().Get("X-Cache") != "hit" {
		t.Error("cache broken after panic")
	}
}

func TestServerLoadShedding(t *testing.T) {
	s := NewServer(Config{Workers: 1, Queue: 1})
	// Fill the whole admission queue (in-flight + queued) from the test:
	// the next request must shed immediately with 429 + Retry-After.
	for i := 0; i < 2; i++ {
		if err := s.gate.Enter(); err != nil {
			t.Fatal(err)
		}
		defer s.gate.Leave()
	}
	w := postJSON(t, s, "/v1/run", validRun)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Errorf("sheds = %d, want 1", st.Sheds)
	}
}

func TestServerDeadline(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	// A nanosecond budget expires before the slot acquire; the request is
	// deadline-killed with 504.
	body := `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"cori-private"},"timeout_s":1e-9}`
	w := postJSON(t, s, "/v1/run", body)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: %d, want 504 (body %s)", w.Code, w.Body)
	}
	if st := s.Stats(); st.DeadlineKills != 1 {
		t.Errorf("deadline kills = %d, want 1", st.DeadlineKills)
	}
}

func TestServerCampaign(t *testing.T) {
	s := NewServer(Config{Workers: 4})
	body := `{"base":` + validRun + `,"seeds":[1,2,3,4]}`
	first := postJSON(t, s, "/v1/campaign", body)
	if first.Code != http.StatusOK {
		t.Fatalf("campaign: %d %s", first.Code, first.Body)
	}
	second := postJSON(t, s, "/v1/campaign", body)
	if second.Code != http.StatusOK {
		t.Fatal("second campaign failed")
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("replayed campaign bytes differ")
	}
	if second.Header().Get("X-Cache-Hits") != "4" {
		t.Errorf("X-Cache-Hits = %q, want 4", second.Header().Get("X-Cache-Hits"))
	}
	// Byte-identical to offline evaluation (the -once path).
	creq, err := ParseCampaignRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	offline, err := ExecuteCampaign(creq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Body.Bytes(), offline) {
		t.Error("campaign response differs from offline evaluation")
	}
	// A campaign point and a single run share cache entries.
	w := postJSON(t, s, "/v1/run", validRun)
	if w.Header().Get("X-Cache") != "hit" {
		t.Error("single run missed cache warmed by campaign")
	}
}

func TestServerDrain(t *testing.T) {
	s := NewServer(Config{Workers: 1})
	if w := postJSON(t, s, "/v1/run", validRun); w.Code != http.StatusOK {
		t.Fatal("pre-drain run failed")
	}
	ready := httptest.NewRecorder()
	s.ServeHTTP(ready, httptest.NewRequest("GET", "/readyz", nil))
	if ready.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", ready.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.BeginDrain(ctx); err != nil {
		t.Fatalf("BeginDrain: %v", err)
	}
	ready = httptest.NewRecorder()
	s.ServeHTTP(ready, httptest.NewRequest("GET", "/readyz", nil))
	if ready.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", ready.Code)
	}
	if w := postJSON(t, s, "/v1/run", validRun); w.Code != http.StatusServiceUnavailable {
		t.Errorf("run while draining: %d, want 503", w.Code)
	}
	// Liveness is not readiness: healthz stays 200 through the drain.
	health := httptest.NewRecorder()
	s.ServeHTTP(health, httptest.NewRequest("GET", "/healthz", nil))
	if health.Code != http.StatusOK {
		t.Errorf("healthz while draining: %d", health.Code)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	s := NewServer(Config{Workers: 1, PanicHook: true})
	if w := postJSON(t, s, "/v1/run", validRun); w.Code != http.StatusOK {
		t.Fatal("run failed")
	}
	if w := postJSON(t, s, "/v1/run", validRun); w.Code != http.StatusOK {
		t.Fatal("run failed")
	}
	if w := postJSON(t, s, "/v1/run", `{"workflow":{"kind":"panic"},"platform":{"preset":"summit"}}`); w.Code != http.StatusInternalServerError {
		t.Fatal("panic request not 500")
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body, err := io.ReadAll(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`bbwfsim_service_requests_total{op="run"} 3`,
		`bbwfsim_service_cache_hits_total 1`,
		`bbwfsim_service_panics_total 1`,
		`bbwfsim_service_sheds_total 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}
