// Package service is the simulation-as-a-service layer behind cmd/bbsimd:
// a serializable request schema, a pure request evaluator, a
// content-addressed single-flight result cache with a crash-safe journal,
// and an HTTP server with admission control, per-request deadlines, panic
// isolation, and graceful drain.
//
// The package sits outside the simulation packages on purpose — bbvet's
// runner-isolation and no-goroutines-in-kernel rules stay intact because
// every simulation a request triggers is built, run, and torn down
// privately inside Execute, one layer above the kernel, exactly like a
// campaign point under internal/runner. Execute itself is registered as a
// bbvet determinism-taint sink: nothing reachable from it may read the
// wall clock, global rand, or host state, which is the machine-checked
// half of the cache-identity argument (the other half is the seeded
// replay property in internal/invariants).
package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
)

// MaxRequestBytes caps the serialized size of a single request (and of a
// campaign request). Oversized payloads are rejected before decoding.
const MaxRequestBytes = 1 << 20

// Schema bounds. They exist so a single request cannot ask the daemon for
// unbounded work: a million-task generated workflow is the largest single
// simulation the scale experiment considers tractable, and campaigns fan
// out through the admission gate point by point.
const (
	MaxGenTasks      = 1_000_000
	MaxGenWidth      = 4096
	MaxPipelines     = 256
	MaxChromosomes   = 64
	MaxSchedJobs     = 100_000
	MaxCampaignSeeds = 1024
	MaxNodes         = 4096
)

// Workflow kinds.
const (
	KindGen     = "gen"     // WfBench-style synthetic DAG (workloads.Scale)
	KindSWarp   = "swarp"   // the paper's SWarp instance
	KindGenomes = "genomes" // the paper's 1000Genomes instance
	// KindPanic is a test-only kind: evaluating it panics inside the
	// worker. The daemon rejects it unless started with its panic hook
	// enabled; it exists so CI can prove panic isolation against a live
	// process without a special build.
	KindPanic = "panic"
)

// RequestError is the typed validation error every malformed request
// resolves to. Handlers map it to HTTP 400; anything else is a 500.
type RequestError struct {
	Field string // JSON path of the offending field, e.g. "workflow.tasks"
	Msg   string
}

func (e *RequestError) Error() string {
	if e.Field == "" {
		return "service: invalid request: " + e.Msg
	}
	return fmt.Sprintf("service: invalid request: %s: %s", e.Field, e.Msg)
}

func badField(field, format string, a ...any) error {
	return &RequestError{Field: field, Msg: fmt.Sprintf(format, a...)}
}

// WorkflowSpec names the workflow to simulate: a generated DAG or one of
// the paper's two calibrated applications.
type WorkflowSpec struct {
	Kind string `json:"kind"`
	// Gen (kind "gen"): topology chain, forkjoin, or montage.
	Topology string `json:"topology,omitempty"`
	Tasks    int    `json:"tasks,omitempty"`
	Width    int    `json:"width,omitempty"`
	// SWarp (kind "swarp").
	Pipelines int `json:"pipelines,omitempty"`
	// Genomes (kind "genomes").
	Chromosomes int `json:"chromosomes,omitempty"`
}

// PlatformSpec selects a platform preset.
type PlatformSpec struct {
	Preset string `json:"preset"`
	Nodes  int    `json:"nodes,omitempty"` // default 1
}

// RunSpec mirrors the single-run knobs of core.RunOptions that are
// meaningful over the wire.
type RunSpec struct {
	StagedFraction           float64 `json:"staged_fraction,omitempty"`
	IntermediatesToBB        bool    `json:"intermediates_bb,omitempty"`
	CoresPerTask             int     `json:"cores_per_task,omitempty"`
	PrePlaceInputs           bool    `json:"preplace,omitempty"`
	EvictAfterLastRead       bool    `json:"evict,omitempty"`
	EnforcePrivateVisibility bool    `json:"enforce_private,omitempty"`
	BBFallback               bool    `json:"bb_fallback,omitempty"`
	NodePolicy               string  `json:"node_policy,omitempty"`  // first-fit (default), least-loaded, round-robin
	OrderPolicy              string  `json:"order_policy,omitempty"` // fifo (default), largest-work, critical-path
}

// CkptSpec mirrors ckpt.Policy.
type CkptSpec struct {
	IntervalSeconds   float64 `json:"interval_s"`
	Tier              string  `json:"tier,omitempty"` // bb (default) or pfs
	Drain             bool    `json:"drain,omitempty"`
	DrainDelaySeconds float64 `json:"drain_delay_s,omitempty"`
	MinSizeMiB        float64 `json:"min_size_mib,omitempty"`
}

// AdaptSpec mirrors adapt.Policy.
type AdaptSpec struct {
	SpillHighWater    float64 `json:"spill_high,omitempty"`
	SpillLowWater     float64 `json:"spill_low,omitempty"`
	ReplicateOnFault  bool    `json:"replicate,omitempty"`
	ReplicationBudget int     `json:"replication_budget,omitempty"`
	DegradedFallback  bool    `json:"degraded_fallback,omitempty"`
}

// FaultSpec injects seeded failures, derived from the request seed.
type FaultSpec struct {
	CrashMeanSeconds    float64 `json:"crash_mean_s,omitempty"`
	CrashBudget         int     `json:"crash_budget,omitempty"`
	NodeFailMeanSeconds float64 `json:"node_fail_mean_s,omitempty"`
	NodeMTTRSeconds     float64 `json:"node_mttr_s,omitempty"`
	NodeFailBudget      int     `json:"node_fail_budget,omitempty"`
	BBRejectProb        float64 `json:"bb_reject_prob,omitempty"`
	// MaxRetries is the per-task retry budget; required > 0 when crashes
	// are injected or the first kill fails the run.
	MaxRetries int `json:"max_retries,omitempty"`
}

// SchedSpec switches the request from a single workflow run to a
// multi-tenant batch campaign (internal/sched) over a synthetic job trace
// generated from the request seed. Workflow is ignored for sched requests.
type SchedSpec struct {
	Policy        string  `json:"policy"`
	Jobs          int     `json:"jobs,omitempty"` // default 1000
	BBCapacityGiB float64 `json:"bb_capacity_gib,omitempty"`
}

// Request is one simulation to evaluate. Identical normalized requests
// are the unit of cache identity: CanonicalHash covers every field except
// TimeoutSeconds, which shapes service behavior, not the simulated world.
type Request struct {
	Workflow WorkflowSpec `json:"workflow"`
	Platform PlatformSpec `json:"platform"`
	Run      RunSpec      `json:"run"`
	Ckpt     *CkptSpec    `json:"ckpt,omitempty"`
	Adapt    *AdaptSpec   `json:"adapt,omitempty"`
	Faults   *FaultSpec   `json:"faults,omitempty"`
	Sched    *SchedSpec   `json:"sched,omitempty"`
	Seed     int64        `json:"seed,omitempty"`
	// TimeoutSeconds is the client's deadline budget; clamped server-side
	// and excluded from the canonical hash.
	TimeoutSeconds float64 `json:"timeout_s,omitempty"`
}

// CampaignRequest sweeps one base request across seeds: point i is Base
// with Seed replaced by Seeds[i]. Every point flows through the shared
// result cache individually, so a campaign warms the cache for later
// single-run requests and vice versa.
type CampaignRequest struct {
	Base  Request `json:"base"`
	Seeds []int64 `json:"seeds"`
}

// ParseRequest decodes and validates one request. Unknown fields, NaN/Inf
// floats, out-of-range sizes, and unknown policy names all resolve to a
// *RequestError; the input is size-capped before decoding.
func ParseRequest(data []byte) (*Request, error) {
	if len(data) > MaxRequestBytes {
		return nil, badField("", "payload %d bytes exceeds cap %d", len(data), MaxRequestBytes)
	}
	var req Request
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// ParseCampaignRequest decodes and validates one campaign request.
func ParseCampaignRequest(data []byte) (*CampaignRequest, error) {
	if len(data) > MaxRequestBytes {
		return nil, badField("", "payload %d bytes exceeds cap %d", len(data), MaxRequestBytes)
	}
	var req CampaignRequest
	if err := decodeStrict(data, &req); err != nil {
		return nil, err
	}
	if len(req.Seeds) == 0 {
		return nil, badField("seeds", "campaign needs at least one seed")
	}
	if len(req.Seeds) > MaxCampaignSeeds {
		return nil, badField("seeds", "%d seeds exceeds cap %d", len(req.Seeds), MaxCampaignSeeds)
	}
	if err := req.Base.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &RequestError{Msg: err.Error()}
	}
	// A second document after the first is as malformed as a bad field.
	if dec.More() {
		return &RequestError{Msg: "trailing data after request object"}
	}
	return nil
}

// finite rejects NaN and ±Inf, which json.Marshal cannot round-trip and
// which would otherwise flow into virtual-time arithmetic.
func finite(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return badField(field, "must be finite, got %v", v)
	}
	return nil
}

func nonNegative(field string, v float64) error {
	if err := finite(field, v); err != nil {
		return err
	}
	if v < 0 {
		return badField(field, "must be non-negative, got %v", v)
	}
	return nil
}

func fraction(field string, v float64) error {
	if err := finite(field, v); err != nil {
		return err
	}
	if v < 0 || v > 1 {
		return badField(field, "must be in [0,1], got %v", v)
	}
	return nil
}

// Validate checks every field against the schema bounds and returns a
// *RequestError naming the first offending field.
func (r *Request) Validate() error {
	if r.Sched == nil {
		if err := r.Workflow.validate(); err != nil {
			return err
		}
	}
	if err := r.Platform.validate(); err != nil {
		return err
	}
	if err := r.Run.validate(); err != nil {
		return err
	}
	if r.Ckpt != nil {
		if err := r.Ckpt.validate(); err != nil {
			return err
		}
	}
	if r.Adapt != nil {
		if err := r.Adapt.validate(); err != nil {
			return err
		}
	}
	if r.Faults != nil {
		if err := r.Faults.validate(); err != nil {
			return err
		}
	}
	if r.Sched != nil {
		if err := r.Sched.validate(); err != nil {
			return err
		}
	}
	if err := nonNegative("timeout_s", r.TimeoutSeconds); err != nil {
		return err
	}
	return nil
}

func (w *WorkflowSpec) validate() error {
	switch w.Kind {
	case KindGen:
		switch w.Topology {
		case "chain", "forkjoin", "montage":
		default:
			return badField("workflow.topology", "unknown topology %q (want chain, forkjoin, or montage)", w.Topology)
		}
		if w.Tasks < 1 || w.Tasks > MaxGenTasks {
			return badField("workflow.tasks", "must be in [1,%d], got %d", MaxGenTasks, w.Tasks)
		}
		if w.Width < 0 || w.Width > MaxGenWidth {
			return badField("workflow.width", "must be in [0,%d], got %d", MaxGenWidth, w.Width)
		}
	case KindSWarp:
		if w.Pipelines < 1 || w.Pipelines > MaxPipelines {
			return badField("workflow.pipelines", "must be in [1,%d], got %d", MaxPipelines, w.Pipelines)
		}
	case KindGenomes:
		if w.Chromosomes < 1 || w.Chromosomes > MaxChromosomes {
			return badField("workflow.chromosomes", "must be in [1,%d], got %d", MaxChromosomes, w.Chromosomes)
		}
	case KindPanic:
		// Structurally valid; the server decides whether the panic hook
		// is armed.
	default:
		return badField("workflow.kind", "unknown kind %q (want gen, swarp, or genomes)", w.Kind)
	}
	return nil
}

func (p *PlatformSpec) validate() error {
	switch p.Preset {
	case "cori-private", "cori-striped", "summit":
	default:
		return badField("platform.preset", "unknown preset %q (want cori-private, cori-striped, or summit)", p.Preset)
	}
	if p.Nodes < 0 || p.Nodes > MaxNodes {
		return badField("platform.nodes", "must be in [0,%d], got %d", MaxNodes, p.Nodes)
	}
	return nil
}

func (r *RunSpec) validate() error {
	if err := fraction("run.staged_fraction", r.StagedFraction); err != nil {
		return err
	}
	if r.CoresPerTask < 0 {
		return badField("run.cores_per_task", "must be non-negative, got %d", r.CoresPerTask)
	}
	switch r.NodePolicy {
	case "", "first-fit", "least-loaded", "round-robin":
	default:
		return badField("run.node_policy", "unknown policy %q", r.NodePolicy)
	}
	switch r.OrderPolicy {
	case "", "fifo", "largest-work", "critical-path":
	default:
		return badField("run.order_policy", "unknown policy %q", r.OrderPolicy)
	}
	return nil
}

func (c *CkptSpec) validate() error {
	if err := nonNegative("ckpt.interval_s", c.IntervalSeconds); err != nil {
		return err
	}
	if c.IntervalSeconds <= 0 {
		return badField("ckpt.interval_s", "must be positive when a ckpt block is present")
	}
	switch c.Tier {
	case "", "bb", "pfs":
	default:
		return badField("ckpt.tier", "unknown tier %q (want bb or pfs)", c.Tier)
	}
	if err := nonNegative("ckpt.drain_delay_s", c.DrainDelaySeconds); err != nil {
		return err
	}
	return nonNegative("ckpt.min_size_mib", c.MinSizeMiB)
}

func (a *AdaptSpec) validate() error {
	if err := fraction("adapt.spill_high", a.SpillHighWater); err != nil {
		return err
	}
	if err := fraction("adapt.spill_low", a.SpillLowWater); err != nil {
		return err
	}
	if a.SpillLowWater > 0 && a.SpillLowWater >= a.SpillHighWater {
		return badField("adapt.spill_low", "must be below spill_high")
	}
	if a.ReplicationBudget < 0 {
		return badField("adapt.replication_budget", "must be non-negative, got %d", a.ReplicationBudget)
	}
	return nil
}

func (f *FaultSpec) validate() error {
	if err := nonNegative("faults.crash_mean_s", f.CrashMeanSeconds); err != nil {
		return err
	}
	if err := nonNegative("faults.node_fail_mean_s", f.NodeFailMeanSeconds); err != nil {
		return err
	}
	if err := nonNegative("faults.node_mttr_s", f.NodeMTTRSeconds); err != nil {
		return err
	}
	if f.NodeFailMeanSeconds > 0 && f.NodeMTTRSeconds <= 0 {
		return badField("faults.node_mttr_s", "must be positive when node failures are injected")
	}
	if err := fraction("faults.bb_reject_prob", f.BBRejectProb); err != nil {
		return err
	}
	if f.CrashBudget < 0 || f.NodeFailBudget < 0 || f.MaxRetries < 0 {
		return badField("faults", "budgets and max_retries must be non-negative")
	}
	if f.CrashMeanSeconds > 0 && f.MaxRetries == 0 {
		return badField("faults.max_retries", "must be positive when crashes are injected (the first kill would fail the run)")
	}
	return nil
}

func (s *SchedSpec) validate() error {
	switch s.Policy {
	case "fcfs", "easy", "plan", "maxbb", "maxparallel", "directio":
	default:
		return badField("sched.policy", "unknown policy %q", s.Policy)
	}
	if s.Jobs < 0 || s.Jobs > MaxSchedJobs {
		return badField("sched.jobs", "must be in [0,%d], got %d", MaxSchedJobs, s.Jobs)
	}
	return nonNegative("sched.bb_capacity_gib", s.BBCapacityGiB)
}

// Normalized returns the request with defaults applied and the timeout
// dropped — the form CanonicalHash covers, so "nodes omitted" and
// "nodes: 1" are the same cache entry.
func (r *Request) Normalized() Request {
	n := *r
	n.TimeoutSeconds = 0
	if n.Platform.Nodes == 0 {
		n.Platform.Nodes = 1
	}
	if n.Sched != nil {
		sched := *n.Sched
		if sched.Jobs == 0 {
			sched.Jobs = 1000
		}
		n.Sched = &sched
		// Sched campaigns ignore the workflow block entirely.
		n.Workflow = WorkflowSpec{}
	}
	if n.Run.NodePolicy == "first-fit" {
		n.Run.NodePolicy = ""
	}
	if n.Run.OrderPolicy == "fifo" {
		n.Run.OrderPolicy = ""
	}
	if n.Ckpt != nil {
		ckpt := *n.Ckpt
		if ckpt.Tier == "" {
			ckpt.Tier = "bb"
		}
		n.Ckpt = &ckpt
	}
	return n
}

// CanonicalHash is the content address of the request: the SHA-256 of the
// normalized request's canonical JSON, hex-encoded. Two requests with the
// same hash run the same simulation and produce byte-identical result
// documents — the property internal/invariants replays 100 seeds to pin.
func (r *Request) CanonicalHash() (string, error) {
	n := r.Normalized()
	b, err := json.Marshal(&n)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}
