package faults

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/trace"
)

func TestDistValidation(t *testing.T) {
	bad := []Config{
		{TaskCrash: &CrashProcess{Arrival: Exp(0)}},
		{TaskCrash: &CrashProcess{Arrival: Exp(-5)}},
		{TaskCrash: &CrashProcess{Arrival: Dist{Kind: "zipf", Scale: 1}}},
		{NodeFailure: &NodeProcess{Arrival: Exp(100), MTTR: 0}},
		{NodeFailure: &NodeProcess{Arrival: Wei(100, 0)}},
		{BBReject: &RejectPolicy{Prob: 1.5}},
		{BBReject: &RejectPolicy{Prob: -0.1}},
		{BBDegrade: &DegradeProcess{Arrival: Exp(10), Duration: 0, Factor: 0.5}},
		{BBDegrade: &DegradeProcess{Arrival: Exp(10), Duration: 5, Factor: 0}},
		{PFSDegrade: &DegradeProcess{Arrival: Exp(10), Duration: 5, Factor: 1.2}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: New accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("New rejected the empty (all-disabled) config: %v", err)
	}
}

func TestDistSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		d := Exp(30).sample(rng)
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("exponential sample %g out of range", d)
		}
		sum += d
	}
	if mean := sum / n; mean < 27 || mean > 33 {
		t.Errorf("exponential mean %g, want ~30", mean)
	}
	// Weibull with shape 1 is exponential with the same scale.
	sum = 0
	for i := 0; i < n; i++ {
		d := Wei(30, 1).sample(rng)
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("weibull sample %g out of range", d)
		}
		sum += d
	}
	if mean := sum / n; mean < 27 || mean > 33 {
		t.Errorf("weibull(30,1) mean %g, want ~30", mean)
	}
}

// run executes a SWarp workload on Cori with the given fault config and
// retry policy.
func run(t *testing.T, mode platform.BBMode, cfg Config, retry exec.RetryPolicy) (*core.Result, error) {
	t.Helper()
	inj, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wf := swarp.MustNew(swarp.Params{Pipelines: 4, CoresPerTask: 4})
	sim := core.MustNewSimulator(platform.Cori(2, mode))
	return sim.Run(wf, core.RunOptions{
		StagedFraction:    1,
		IntermediatesToBB: true,
		Faults:            inj,
		Retry:             retry,
		BBFallback:        true,
	})
}

func TestTaskCrashRecovery(t *testing.T) {
	baseline, err := run(t, platform.BBStriped, Config{}, exec.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := run(t, platform.BBStriped,
		Config{Seed: 11, TaskCrash: &CrashProcess{Arrival: Exp(40)}},
		exec.RetryPolicy{MaxRetries: 50, BaseDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TaskFailures == 0 {
		t.Fatal("crash process injected no failures; shrink the inter-arrival mean")
	}
	if res.Faults.Retries == 0 {
		t.Error("failures recorded but no retries")
	}
	if res.Makespan <= baseline.Makespan {
		t.Errorf("makespan %g under crashes not above fault-free %g", res.Makespan, baseline.Makespan)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	_, err := run(t, platform.BBStriped,
		Config{Seed: 11, TaskCrash: &CrashProcess{Arrival: Exp(20)}},
		exec.RetryPolicy{MaxRetries: 0})
	if err == nil {
		t.Fatal("zero retry budget under constant crashes did not fail the run")
	}
}

func TestNodeFailureRecovery(t *testing.T) {
	for _, mode := range []platform.BBMode{platform.BBStriped, platform.BBPrivate} {
		res, err := run(t, mode,
			Config{Seed: 3, NodeFailure: &NodeProcess{Arrival: Exp(150), MTTR: 60}},
			exec.RetryPolicy{MaxRetries: 100, BaseDelay: 1})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Faults.NodeFailures == 0 {
			t.Fatalf("mode %v: node process injected no failures", mode)
		}
		if repairs := res.Trace.CountKind(trace.NodeRepair); repairs == 0 {
			t.Errorf("mode %v: failures without repairs", mode)
		}
	}
}

func TestBBRejectionFallsBackToPFS(t *testing.T) {
	res, err := run(t, platform.BBStriped,
		Config{Seed: 5, BBReject: &RejectPolicy{Prob: 0.5}},
		exec.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.BBRejections == 0 {
		t.Fatal("rejection policy rejected nothing")
	}
	if res.Faults.Fallbacks < res.Faults.BBRejections {
		t.Errorf("%d rejections but only %d fallbacks", res.Faults.BBRejections, res.Faults.Fallbacks)
	}
}

func TestDegradationWindows(t *testing.T) {
	baseline, err := run(t, platform.BBStriped, Config{}, exec.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := run(t, platform.BBStriped,
		Config{
			Seed:       9,
			BBDegrade:  &DegradeProcess{Arrival: Exp(30), Duration: 20, Factor: 0.1},
			PFSDegrade: &DegradeProcess{Arrival: Exp(30), Duration: 20, Factor: 0.1},
		},
		exec.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.DegradeWindows == 0 {
		t.Fatal("degradation processes opened no windows")
	}
	if res.Makespan <= baseline.Makespan {
		t.Errorf("makespan %g under degradation not above fault-free %g", res.Makespan, baseline.Makespan)
	}
}

// TestReplayBitIdentical is the package-local half of the acceptance
// criterion: the same seed must reproduce the same faults and the same
// trace, byte for byte (the cross-package witness lives in
// internal/integration).
func TestReplayBitIdentical(t *testing.T) {
	cfg := Config{
		Seed:        21,
		TaskCrash:   &CrashProcess{Arrival: Exp(60)},
		NodeFailure: &NodeProcess{Arrival: Wei(300, 1.5), MTTR: 45},
		BBReject:    &RejectPolicy{Prob: 0.2},
		BBDegrade:   &DegradeProcess{Arrival: Exp(120), Duration: 15, Factor: 0.25},
		PFSDegrade:  &DegradeProcess{Arrival: Exp(200), Duration: 10, Factor: 0.5},
	}
	retry := exec.RetryPolicy{MaxRetries: 100, Backoff: exec.BackoffExponential, BaseDelay: 2, MaxDelay: 60, Jitter: 0.3, Seed: 77}
	one := func() []byte {
		res, err := run(t, platform.BBPrivate, cfg, retry)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	first, second := one(), one()
	if !bytes.Equal(first, second) {
		t.Fatalf("fault-injected traces differ between identical runs (%d vs %d bytes)", len(first), len(second))
	}
}

func TestInjectorSingleUse(t *testing.T) {
	inj, err := New(Config{Seed: 1, TaskCrash: &CrashProcess{Arrival: Exp(100)}})
	if err != nil {
		t.Fatal(err)
	}
	wf := swarp.MustNew(swarp.Params{Pipelines: 1, CoresPerTask: 4})
	sim := core.MustNewSimulator(platform.Cori(1, platform.BBStriped))
	if _, err := sim.Run(wf, core.RunOptions{Faults: inj, Retry: exec.RetryPolicy{MaxRetries: 10, BaseDelay: 1}}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("reusing an attached Injector did not panic")
		}
	}()
	_, _ = sim.Run(wf, core.RunOptions{Faults: inj})
}
