// Package faults injects deterministic, seeded failures into a simulated
// workflow execution: task crashes, whole-node failures with repair, burst-
// buffer allocation rejections, and transient bandwidth degradation of the
// burst buffers or the PFS (brown-outs).
//
// Failure processes are renewal processes in *virtual* time: inter-arrival
// times are sampled from exponential or Weibull distributions, each process
// drawing from its own rand stream seeded from Config.Seed. Nothing here
// touches the wall clock or global randomness, so a replay with the same
// seed — and the same workload — reproduces every failure at the same
// virtual instant, bit for bit.
//
// An Injector is single-use: its streams advance as the run progresses, so
// build a fresh one (same Config is fine) for every exec.Run.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/flow"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/workflow"
)

// DistKind selects an inter-arrival distribution.
type DistKind string

const (
	// Exponential inter-arrivals: a Poisson failure process (constant
	// hazard rate), the classic memoryless model.
	Exponential DistKind = "exponential"
	// Weibull inter-arrivals: shape < 1 models infant mortality (bursty
	// failures), shape > 1 wear-out; shape = 1 degenerates to exponential.
	Weibull DistKind = "weibull"
)

// Dist is an inter-arrival distribution over virtual seconds.
type Dist struct {
	Kind DistKind
	// Scale is the exponential mean, or the Weibull scale parameter λ.
	Scale float64
	// Shape is the Weibull shape parameter k; ignored for Exponential.
	Shape float64
}

// Exp returns an exponential distribution with the given mean.
func Exp(mean float64) Dist { return Dist{Kind: Exponential, Scale: mean} }

// Wei returns a Weibull distribution with the given scale and shape.
func Wei(scale, shape float64) Dist { return Dist{Kind: Weibull, Scale: scale, Shape: shape} }

func (d Dist) validate(what string) error {
	switch d.Kind {
	case Exponential:
		if d.Scale <= 0 {
			return fmt.Errorf("faults: %s: exponential mean must be positive, got %g", what, d.Scale)
		}
	case Weibull:
		if d.Scale <= 0 || d.Shape <= 0 {
			return fmt.Errorf("faults: %s: weibull scale and shape must be positive, got %g/%g",
				what, d.Scale, d.Shape)
		}
	default:
		return fmt.Errorf("faults: %s: unknown distribution %q", what, d.Kind)
	}
	return nil
}

// Validate reports whether the distribution is well-formed; what names it
// in the error. Exported for layers that reuse Dist outside an Injector
// (the batch scheduler's fault plan).
func (d Dist) Validate(what string) error { return d.validate(what) }

// Sample draws one inter-arrival time from the distribution using the
// caller's seeded stream. Exported for layers that reuse Dist outside an
// Injector (the batch scheduler's fault plan); the Injector's own
// processes keep their private streams.
func (d Dist) Sample(rng *rand.Rand) float64 { return d.sample(rng) }

// sample draws one inter-arrival time by inversion. 1-U keeps the argument
// of the logarithm in (0, 1]: rand.Float64 may return exactly 0.
func (d Dist) sample(rng *rand.Rand) float64 {
	u := 1 - rng.Float64()
	switch d.Kind {
	case Weibull:
		return d.Scale * math.Pow(-math.Log(u), 1/d.Shape)
	default:
		return -d.Scale * math.Log(u)
	}
}

// CrashProcess kills a uniformly chosen running task at each arrival — in
// whatever phase it happens to be (read, compute, write, staging). Arrivals
// with nothing running are no-ops.
type CrashProcess struct {
	Arrival Dist
	// Budget bounds the campaign: after this many injected crashes the
	// process stops. 0 means unlimited — note that an unlimited process
	// whose inter-arrival mean is shorter than the longest task can
	// prevent the workflow from ever finishing (the last task is killed
	// faster than it can complete).
	Budget int
}

// NodeProcess takes a uniformly chosen up node down at each arrival,
// killing its resident tasks and destroying the burst-buffer replicas it
// hosted; the node repairs after MTTR virtual seconds. One node always
// survives: arrivals finding a single up node are no-ops.
type NodeProcess struct {
	Arrival Dist
	// MTTR is the virtual-time outage duration; must be positive or the
	// cluster could drain to nothing forever.
	MTTR float64
	// Budget bounds the campaign (see CrashProcess.Budget); 0 is unlimited.
	Budget int
}

// RejectPolicy makes each burst-buffer allocation fail independently with
// probability Prob (DataWarp pool exhaustion / allocation-request errors).
// Rejected allocations fall back to the PFS.
type RejectPolicy struct {
	Prob float64
}

// DegradeProcess transiently cuts a storage service's bandwidth: at each
// arrival one target service runs at Factor of its nominal bandwidth for
// Duration virtual seconds. Windows never overlap — the next arrival is
// sampled after the previous window closes.
type DegradeProcess struct {
	Arrival Dist
	// Duration is the window length in virtual seconds; must be positive.
	Duration float64
	// Factor in (0, 1] is the remaining fraction of nominal bandwidth.
	Factor float64
}

func (p *DegradeProcess) validate(what string) error {
	if err := p.Arrival.validate(what); err != nil {
		return err
	}
	if p.Duration <= 0 {
		return fmt.Errorf("faults: %s: duration must be positive, got %g", what, p.Duration)
	}
	if p.Factor <= 0 || p.Factor > 1 {
		return fmt.Errorf("faults: %s: factor must be in (0,1], got %g", what, p.Factor)
	}
	return nil
}

// Config enables failure processes; nil members are disabled.
type Config struct {
	// Seed derives every process's rand stream.
	Seed int64
	// TaskCrash kills running tasks.
	TaskCrash *CrashProcess
	// NodeFailure takes whole nodes down (and back up after MTTR).
	NodeFailure *NodeProcess
	// BBReject rejects burst-buffer allocations.
	BBReject *RejectPolicy
	// BBDegrade transiently degrades burst-buffer bandwidth.
	BBDegrade *DegradeProcess
	// PFSDegrade transiently degrades PFS bandwidth (brown-outs).
	PFSDegrade *DegradeProcess
}

// Injector implements exec.FaultModel for one run.
type Injector struct {
	cfg      Config
	ctrl     exec.FaultController
	eng      *sim.Engine
	attached bool

	crashRng  *rand.Rand
	nodeRng   *rand.Rand
	rejectRng *rand.Rand
	bbRng     *rand.Rand
	pfsRng    *rand.Rand

	crashes int // crashes injected so far
	outages int // node failures injected so far
}

// Stream offsets keep the processes' rand streams disjoint for a given
// seed (the testbed uses the same large-prime spacing for replications).
const streamSpacing = 1_000_003

// New validates the configuration and builds a single-use injector.
func New(cfg Config) (*Injector, error) {
	if cfg.TaskCrash != nil {
		if err := cfg.TaskCrash.Arrival.validate("task crash"); err != nil {
			return nil, err
		}
	}
	if cfg.NodeFailure != nil {
		if err := cfg.NodeFailure.Arrival.validate("node failure"); err != nil {
			return nil, err
		}
		if cfg.NodeFailure.MTTR <= 0 {
			return nil, fmt.Errorf("faults: node failure MTTR must be positive, got %g", cfg.NodeFailure.MTTR)
		}
	}
	if cfg.BBReject != nil {
		if cfg.BBReject.Prob < 0 || cfg.BBReject.Prob > 1 {
			return nil, fmt.Errorf("faults: BB rejection probability must be in [0,1], got %g", cfg.BBReject.Prob)
		}
	}
	if cfg.BBDegrade != nil {
		if err := cfg.BBDegrade.validate("BB degradation"); err != nil {
			return nil, err
		}
	}
	if cfg.PFSDegrade != nil {
		if err := cfg.PFSDegrade.validate("PFS degradation"); err != nil {
			return nil, err
		}
	}
	return &Injector{
		cfg:       cfg,
		crashRng:  rand.New(rand.NewSource(cfg.Seed + 1*streamSpacing)),
		nodeRng:   rand.New(rand.NewSource(cfg.Seed + 2*streamSpacing)),
		rejectRng: rand.New(rand.NewSource(cfg.Seed + 3*streamSpacing)),
		bbRng:     rand.New(rand.NewSource(cfg.Seed + 4*streamSpacing)),
		pfsRng:    rand.New(rand.NewSource(cfg.Seed + 5*streamSpacing)),
	}, nil
}

// Attach implements exec.FaultModel: it arms every enabled process on the
// run's virtual clock. An Injector attaches exactly once.
func (in *Injector) Attach(ctrl exec.FaultController) {
	if in.attached {
		panic("faults: Injector is single-use; build a fresh one per run")
	}
	in.attached = true
	in.ctrl = ctrl
	in.eng = ctrl.System().Platform().Engine()
	if p := in.cfg.TaskCrash; p != nil {
		in.eng.After(p.Arrival.sample(in.crashRng), in.crashArrival)
	}
	if p := in.cfg.NodeFailure; p != nil {
		in.eng.After(p.Arrival.sample(in.nodeRng), in.nodeArrival)
	}
	if p := in.cfg.BBDegrade; p != nil {
		in.eng.After(p.Arrival.sample(in.bbRng), func() { in.degradeArrival(p, in.bbRng, true) })
	}
	if p := in.cfg.PFSDegrade; p != nil {
		in.eng.After(p.Arrival.sample(in.pfsRng), func() { in.degradeArrival(p, in.pfsRng, false) })
	}
}

// RejectBBAlloc implements exec.FaultModel.
func (in *Injector) RejectBBAlloc(*workflow.Task, *workflow.File) bool {
	return in.cfg.BBReject != nil && in.rejectRng.Float64() < in.cfg.BBReject.Prob
}

func (in *Injector) crashArrival() {
	p := in.cfg.TaskCrash
	if running := in.ctrl.Running(); len(running) > 0 {
		victim := running[in.crashRng.Intn(len(running))]
		in.ctrl.KillTask(victim, "injected crash")
		in.crashes++
	}
	if p.Budget > 0 && in.crashes >= p.Budget {
		return // campaign exhausted; the process drains
	}
	in.eng.After(p.Arrival.sample(in.crashRng), in.crashArrival)
}

func (in *Injector) nodeArrival() {
	p := in.cfg.NodeFailure
	if up := in.ctrl.UpNodes(); len(up) > 1 {
		victim := up[in.nodeRng.Intn(len(up))]
		in.ctrl.FailNode(victim, "injected failure")
		in.eng.After(p.MTTR, func() { in.ctrl.RepairNode(victim) })
		in.outages++
	}
	if p.Budget > 0 && in.outages >= p.Budget {
		return
	}
	in.eng.After(p.Arrival.sample(in.nodeRng), in.nodeArrival)
}

// degradeArrival opens one degradation window on a target service (a
// random burst buffer, or the PFS) and schedules the next arrival after
// the window closes.
func (in *Injector) degradeArrival(p *DegradeProcess, rng *rand.Rand, bb bool) {
	sys := in.ctrl.System()
	var svc storage.Service
	if bb {
		bbs := sys.AllBBs()
		svc = bbs[rng.Intn(len(bbs))]
	} else {
		svc = sys.PFS()
	}
	net := sys.Platform().Network()
	resources := servicePath(svc)
	in.ctrl.Note(trace.DegradeStart, fmt.Sprintf("%s x%g for %gs", svc.Name(), p.Factor, p.Duration))
	in.ctrl.SetDegraded(svc, true)
	saved := make([]float64, len(resources))
	for i, r := range resources {
		saved[i] = r.Capacity()
		net.SetCapacity(r, saved[i]*p.Factor)
	}
	in.eng.After(p.Duration, func() {
		for i, r := range resources {
			net.SetCapacity(r, saved[i])
		}
		in.ctrl.SetDegraded(svc, false)
		in.ctrl.Note(trace.DegradeEnd, svc.Name())
		in.eng.After(p.Arrival.sample(rng), func() { in.degradeArrival(p, rng, bb) })
	})
}

// servicePath returns the service-side flow resources of svc (disk plus
// any dedicated network ingest), deduplicated and node-independent.
func servicePath(svc storage.Service) []*flow.Resource {
	var resources []*flow.Resource
	for _, r := range append(svc.ReadPath(nil), svc.WritePath(nil)...) {
		dup := false
		for _, seen := range resources {
			if seen == r {
				dup = true
				break
			}
		}
		if !dup {
			resources = append(resources, r)
		}
	}
	return resources
}
