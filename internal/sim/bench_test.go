package sim

import "testing"

// BenchmarkEventThroughput measures raw event scheduling + dispatch.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	count := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(float64(i%97)/10, func() { count++ })
	}
	e.Run()
	b.StopTimer()
	if count != b.N {
		b.Fatalf("fired %d of %d events", count, b.N)
	}
}

// BenchmarkCancellation measures schedule + cancel churn, the pattern the
// flow model's completion rescheduling produces.
func BenchmarkCancellation(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		ev := e.After(1e9, func() {})
		e.Cancel(ev)
	}
}

// BenchmarkNestedScheduling measures the event-from-event pattern of the
// execution engine (each completion schedules successors).
func BenchmarkNestedScheduling(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var chain func()
	chain = func() {
		remaining--
		if remaining > 0 {
			e.After(0.001, chain)
		}
	}
	e.After(0.001, chain)
	b.ResetTimer()
	e.Run()
}
