package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { order = append(order, at) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("Run() = %v, want 5", end)
	}
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("fired %d events, want 5", len(order))
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want FIFO", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var fired float64
	e.At(10, func() {
		e.After(5, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 15 {
		t.Errorf("nested After fired at %v, want 15", fired)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var ev Handle
	e.At(1, func() { e.Cancel(ev) })
	ev = e.At(2, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event cancelled at t=1 still fired at t=2")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.At(1, nil)
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	end := e.RunUntil(3)
	if end != 3 {
		t.Errorf("RunUntil(3) = %v, want 3", end)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events before horizon, want 3 (events at horizon fire)", len(fired))
	}
	// Resume to completion.
	end = e.Run()
	if end != 5 || len(fired) != 5 {
		t.Errorf("resume: end=%v fired=%d, want 5 and 5", end, len(fired))
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	end := e.Run()
	if count != 1 || end != 1 {
		t.Errorf("Stop: count=%d end=%v, want 1 and 1", count, end)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d after Stop, want 1", e.Pending())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++ })
	e.At(2, func() { count++ })
	if !e.Step() || count != 1 || e.Now() != 1 {
		t.Errorf("first Step: count=%d now=%v", count, e.Now())
	}
	if !e.Step() || count != 2 || e.Now() != 2 {
		t.Errorf("second Step: count=%d now=%v", count, e.Now())
	}
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.EventsFired() != 17 {
		t.Errorf("EventsFired() = %d, want 17", e.EventsFired())
	}
}

// Property: for any random schedule (including duplicate times and nested
// scheduling), events observe a non-decreasing clock and all fire.
func TestClockMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		last := math.Inf(-1)
		ok := true
		n := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			count := 1 + rng.Intn(5)
			for i := 0; i < count; i++ {
				d := float64(rng.Intn(10))
				deeper := depth < 3 && rng.Intn(2) == 0
				e.After(d, func() {
					n++
					if e.Now() < last {
						ok = false
					}
					last = e.Now()
					if deeper {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		e.Run()
		return ok && n > 0 && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the engine is deterministic — identical schedules produce
// identical firing sequences.
func TestDeterminismQuick(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var times []float64
		for i := 0; i < 50; i++ {
			d := float64(rng.Intn(20))
			e.After(d, func() { times = append(times, e.Now()) })
		}
		e.Run()
		return times
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
