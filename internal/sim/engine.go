// Package sim implements the discrete-event simulation kernel the rest of
// the simulator is built on: a virtual clock, a cancellable event queue, and
// a run loop.
//
// Determinism is a hard requirement (the accuracy evaluation compares runs
// bit-for-bit): events scheduled for the same instant fire in scheduling
// order, and nothing in the kernel consults wall-clock time or global
// randomness.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it. An Event must not be reused after it fires or is
// cancelled.
type Event struct {
	Time float64 // virtual time at which the event fires, in seconds
	fn   func()
	seq  uint64 // tie-breaker: same-time events fire in scheduling order
	idx  int    // heap index, -1 once removed
}

// Cancelled reports whether the event was removed from the queue before
// firing (or has already fired).
func (e *Event) Cancelled() bool { return e.idx < 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//bbvet:allow float-compare -- heap comparator tie-break: events at the bit-identical instant fall through to the scheduling-order tie-breaker; an epsilon would merge distinct instants
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// for use; call NewEngine.
type Engine struct {
	now     float64
	queue   eventHeap
	seq     uint64
	running bool
	stopped bool
	fired   uint64
	maxPend int
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsFired returns the number of events executed so far. Useful for
// complexity assertions in tests.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending returns the event queue's high-water mark: the largest number
// of simultaneously scheduled events seen so far. Like EventsFired it is a
// deterministic cost metric — the observability layer reports it as the
// sim_queue_peak_events gauge.
func (e *Engine) MaxPending() int { return e.maxPend }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modeling bug, and silently clamping would
// corrupt causality.
func (e *Engine) At(t float64, fn func()) *Event {
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at t=%g before now=%g", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	ev := &Event{Time: t, fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.maxPend {
		e.maxPend = len(e.queue)
	}
	return ev
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	ev.idx = -1
	ev.fn = nil
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events in time order until the queue drains, Stop is
// called, or the next event would fire strictly after horizon. Events at
// exactly the horizon still fire. It returns the final virtual time (which
// never exceeds the horizon).
func (e *Engine) RunUntil(horizon float64) float64 {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.Time > horizon {
			break
		}
		heap.Pop(&e.queue)
		if next.Time < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = next.Time
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
	}
	if !math.IsInf(horizon, 1) && e.now < horizon && len(e.queue) > 0 && !e.stopped {
		// We stopped because the next event is past the horizon; the clock
		// still advances to the horizon so callers can resume later.
		e.now = horizon
	}
	return e.now
}

// Step executes exactly the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.Time
	fn := next.fn
	next.fn = nil
	e.fired++
	fn()
	return true
}
