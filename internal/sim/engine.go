// Package sim implements the discrete-event simulation kernel the rest of
// the simulator is built on: a virtual clock, a cancellable event queue, and
// a run loop.
//
// Determinism is a hard requirement (the accuracy evaluation compares runs
// bit-for-bit): events scheduled for the same instant fire in scheduling
// order, and nothing in the kernel consults wall-clock time or global
// randomness.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. Events are pooled: once an event fires or
// is cancelled it returns to the engine's free list and may be reused by a
// later At/After. Callers therefore never hold *Event directly — scheduling
// returns a Handle that pairs the pointer with the generation it was issued
// for, so operations on a stale handle are safe no-ops.
type Event struct {
	Time float64 // virtual time at which the event fires, in seconds
	fn   func()
	seq  uint64 // tie-breaker: same-time events fire in scheduling order
	idx  int    // heap index, -1 once removed
	gen  uint64 // bumped on retirement; invalidates outstanding Handles
}

// Handle identifies one scheduled occurrence of a pooled event. The zero
// Handle is valid and behaves like an event that already fired: Cancelled
// reports true and Engine.Cancel is a no-op.
type Handle struct {
	ev  *Event
	gen uint64
}

// Cancelled reports whether the handle's occurrence was removed from the
// queue before firing (or has already fired). A zero Handle is Cancelled.
func (h Handle) Cancelled() bool {
	return h.ev == nil || h.ev.gen != h.gen || h.ev.idx < 0
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//bbvet:allow float-compare -- heap comparator tie-break: events at the bit-identical instant fall through to the scheduling-order tie-breaker; an epsilon would merge distinct instants
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not ready
// for use; call NewEngine.
type Engine struct {
	now     float64
	queue   eventHeap
	free    []*Event // retired events awaiting reuse (O(peak pending))
	seq     uint64
	running bool
	stopped bool
	fired   uint64
	maxPend int
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// EventsFired returns the number of events executed so far. Useful for
// complexity assertions in tests.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending returns the event queue's high-water mark: the largest number
// of simultaneously scheduled events seen so far. Like EventsFired it is a
// deterministic cost metric — the observability layer reports it as the
// sim_queue_peak_events gauge.
func (e *Engine) MaxPending() int { return e.maxPend }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a modeling bug, and silently clamping would
// corrupt causality.
func (e *Engine) At(t float64, fn func()) Handle {
	if math.IsNaN(t) {
		panic("sim: scheduling at NaN time")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at t=%g before now=%g", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil callback")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.Time = t
	ev.fn = fn
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.maxPend {
		e.maxPend = len(e.queue)
	}
	return Handle{ev: ev, gen: ev.gen}
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d float64, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", d))
	}
	return e.At(e.now+d, fn)
}

// retire returns a popped or removed event to the free list. Bumping the
// generation first invalidates every outstanding Handle to this occurrence,
// so the struct can be reused immediately — even by a callback scheduled
// from inside the event's own fn.
func (e *Engine) retire(ev *Event) {
	ev.gen++
	ev.fn = nil
	ev.idx = -1
	e.free = append(e.free, ev)
}

// Cancel removes a pending event from the queue. Cancelling a handle whose
// event already fired or was already cancelled is a no-op — the generation
// check makes stale handles harmless even after the pooled Event struct has
// been reissued to an unrelated caller.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.idx < 0 {
		return
	}
	heap.Remove(&e.queue, ev.idx)
	e.retire(ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its initial state — clock at zero, queue
// empty, counters cleared — while keeping the retired-event free list, so a
// reused engine's warm-up cost is paid once across sequential runs. Any
// still-pending events are retired exactly as Cancel would retire them:
// their outstanding Handles read Cancelled and the structs are reusable.
// Resetting mid-Run panics.
func (e *Engine) Reset() {
	if e.running {
		panic("sim: Reset during Run")
	}
	for i, ev := range e.queue {
		e.queue[i] = nil
		e.retire(ev)
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.fired = 0
	e.maxPend = 0
	e.stopped = false
}

// Run executes events in time order until the queue drains or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() float64 {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events in time order until the queue drains, Stop is
// called, or the next event would fire strictly after horizon. Events at
// exactly the horizon still fire. It returns the final virtual time (which
// never exceeds the horizon).
func (e *Engine) RunUntil(horizon float64) float64 {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.Time > horizon {
			break
		}
		heap.Pop(&e.queue)
		if next.Time < e.now {
			panic("sim: event queue time went backwards")
		}
		e.now = next.Time
		fn := next.fn
		e.retire(next)
		e.fired++
		fn()
	}
	if !math.IsInf(horizon, 1) && e.now < horizon && len(e.queue) > 0 && !e.stopped {
		// We stopped because the next event is past the horizon; the clock
		// still advances to the horizon so callers can resume later.
		e.now = horizon
	}
	return e.now
}

// Step executes exactly the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.Time
	fn := next.fn
	e.retire(next)
	e.fired++
	fn()
	return true
}
