package sim

import "testing"

// TestChurnZeroAllocs asserts the event free list works: after warm-up, a
// schedule/cancel/fire churn loop allocates nothing (the ISSUE-8 companion
// to flow's TestRecomputeZeroAllocs).
func TestChurnZeroAllocs(t *testing.T) {
	e := NewEngine()
	fired := 0
	fn := func() { fired++ }
	churn := func() {
		// Two scheduled, one cancelled, one fired, plus a same-time pair to
		// exercise heap movement.
		a := e.After(1, fn)
		b := e.After(2, fn)
		e.After(2, fn)
		e.Cancel(a)
		e.RunUntil(e.Now() + 3)
		if !a.Cancelled() || !b.Cancelled() {
			t.Fatal("handles should read Cancelled after cancel/fire")
		}
	}
	for i := 0; i < 10; i++ { // warm up the free list and heap backing array
		churn()
	}
	avg := testing.AllocsPerRun(100, churn)
	if avg != 0 {
		t.Fatalf("steady-state churn allocated %.1f allocs/op, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("no events fired")
	}
}

// TestEngineResetReuse: Reset drains the queue into the free list and
// returns the clock and counters to zero, so a second run on the same
// engine behaves exactly like a fresh one — without re-growing the event
// pool (zero allocations once warm).
func TestEngineResetReuse(t *testing.T) {
	e := NewEngine()
	var order []float64
	pending := e.At(5, func() { t.Error("event from before Reset fired") })
	e.At(1, func() { order = append(order, e.Now()) })
	e.RunUntil(1)

	e.Reset()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", e.Now())
	}
	if e.Pending() != 0 || e.EventsFired() != 0 || e.MaxPending() != 0 {
		t.Fatalf("counters not cleared: pending=%d fired=%d maxPend=%d",
			e.Pending(), e.EventsFired(), e.MaxPending())
	}
	if !pending.Cancelled() {
		t.Fatal("handle pending across Reset should read Cancelled")
	}
	e.Cancel(pending) // stale: must not disturb the reused pool

	e.At(2, func() { order = append(order, e.Now()) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("fired at %v, want [1 2]", order)
	}

	// A reset engine reuses its warm free list: run/reset cycles allocate
	// nothing in the steady state.
	cycle := func() {
		for i := 0; i < 4; i++ {
			e.After(float64(i+1), func() {})
		}
		e.Run()
		e.Reset()
	}
	cycle() // warm up
	if avg := testing.AllocsPerRun(100, cycle); avg != 0 {
		t.Fatalf("run/reset cycle allocated %.1f allocs/op, want 0", avg)
	}
}

// TestStaleHandleSafeAcrossReuse pins the generation-counter contract: once
// an event fires or is cancelled, its struct may be reissued, and the old
// handle must neither cancel nor observe the new occurrence.
func TestStaleHandleSafeAcrossReuse(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run() // fires; the struct returns to the free list

	secondFired := false
	fresh := e.At(2, func() { secondFired = true })
	if fresh.ev != stale.ev {
		t.Fatal("free list did not reuse the retired event struct")
	}
	if !stale.Cancelled() {
		t.Error("stale handle should read Cancelled after its occurrence fired")
	}
	if fresh.Cancelled() {
		t.Error("fresh handle should be pending")
	}
	e.Cancel(stale) // must NOT cancel the reissued occurrence
	e.Run()
	if !secondFired {
		t.Fatal("stale Cancel removed an unrelated reissued event")
	}

	// And a cancelled occurrence invalidates its handle the same way.
	h := e.At(e.Now()+1, func() {})
	e.Cancel(h)
	thirdFired := false
	h2 := e.At(e.Now()+1, func() { thirdFired = true })
	e.Cancel(h) // stale again: struct was reissued to h2
	e.Run()
	if !thirdFired {
		t.Fatal("stale Cancel after cancel removed a reissued event")
	}
	if h2.Cancelled() != true {
		t.Error("h2 should read Cancelled after firing")
	}
}
