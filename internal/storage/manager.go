package storage

import (
	"fmt"

	"bbwfsim/internal/flow"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// OpKind identifies a storage operation.
type OpKind string

const (
	// OpRead moves file content from a service to a compute node.
	OpRead OpKind = "read"
	// OpWrite moves file content from a compute node to a service.
	OpWrite OpKind = "write"
	// OpCopy moves file content service-to-service through a compute node
	// (stage-in / stage-out).
	OpCopy OpKind = "copy"
)

// OpParams are the tunable characteristics of one operation. The base
// values come from the target service; an OpModel may adjust them.
type OpParams struct {
	// Latency is the fixed per-operation cost in seconds before data moves.
	Latency float64
	// RateCap bounds the stream rate in bytes/s; 0 means unbounded.
	RateCap units.Bandwidth
	// SizeFactor scales the effective transfer volume; values above 1 model
	// overheads that stretch the transfer (noise, fragmentation). Must be
	// positive.
	SizeFactor float64
}

// OpContext describes an operation to an OpModel.
type OpContext struct {
	Kind    OpKind
	Service Service // target: the read source, write destination, or copy destination
	Source  Service // copy source; nil otherwise
	Node    *platform.Node
	File    *workflow.File
	// InFlight is the number of operations already in flight on Service
	// when this one starts.
	InFlight int
	// Time is the virtual time the operation starts.
	Time float64
}

// OpModel adjusts operation parameters. The lightweight simulator uses the
// identity model; the synthetic testbed (internal/testbed) installs a model
// that adds mode-dependent latency, contention penalties, anomalies, and
// measurement noise.
type OpModel interface {
	Adjust(ctx OpContext, base OpParams) OpParams
}

// IdentityModel returns base parameters unchanged. It is the OpModel of the
// paper's lightweight simulator.
type IdentityModel struct{}

// Adjust implements OpModel.
func (IdentityModel) Adjust(_ OpContext, base OpParams) OpParams { return base }

// ServiceStats aggregates the traffic a service carried.
type ServiceStats struct {
	BytesRead    units.Bytes
	BytesWritten units.Bytes
	ReadOps      int
	WriteOps     int
	// ReadSeconds and WriteSeconds sum per-operation wall durations
	// (latency included), for achieved-bandwidth reporting (Fig. 9).
	ReadSeconds  float64
	WriteSeconds float64
}

// ReadBandwidth returns the average achieved read bandwidth.
func (s ServiceStats) ReadBandwidth() units.Bandwidth {
	if s.ReadSeconds <= 0 {
		return 0
	}
	return units.Bandwidth(float64(s.BytesRead) / s.ReadSeconds)
}

// WriteBandwidth returns the average achieved write bandwidth.
func (s ServiceStats) WriteBandwidth() units.Bandwidth {
	if s.WriteSeconds <= 0 {
		return 0
	}
	return units.Bandwidth(float64(s.BytesWritten) / s.WriteSeconds)
}

// Op is a storage operation in flight.
type Op struct {
	Kind    OpKind
	File    *workflow.File
	Service Service
	Source  Service
	Node    *platform.Node
	Started float64

	fl        *flow.Flow
	mgr       *Manager
	reserved  units.Bytes
	cancelled bool
	finished  bool
}

// Cancel aborts the operation: its callback will not run, and a write's
// reservation is returned.
func (o *Op) Cancel() {
	if o.finished || o.cancelled {
		return
	}
	o.cancelled = true
	o.fl.Cancel()
	o.mgr.inFlight[o.Service]--
	if o.reserved > 0 {
		o.mgr.pending[o.Service] -= o.reserved
		o.Service.Release(o.reserved)
	}
}

// Manager starts storage operations and keeps per-service accounting.
type Manager struct {
	eng      *sim.Engine
	net      *flow.Network
	reg      *Registry
	model    OpModel
	inFlight map[Service]int
	// pending tracks capacity reserved by writes/copies still in flight:
	// space that Used() already counts but the registry does not yet see.
	pending map[Service]units.Bytes
	stats   map[Service]*ServiceStats
	// col receives per-operation metrics at completion; nil (the default)
	// costs nothing beyond the nil-receiver check inside the collector.
	col *metrics.Collector
	// onReserve, if set, runs after each successful write/copy reservation
	// with the destination service. The adaptation layer (internal/exec)
	// uses it as its occupancy-pressure probe: reservations are the only
	// moments committed-plus-pending usage rises.
	onReserve func(Service)
}

// NewManager builds a manager over the platform's flow network. A nil model
// means the identity model.
func NewManager(eng *sim.Engine, net *flow.Network, reg *Registry, model OpModel) *Manager {
	if model == nil {
		model = IdentityModel{}
	}
	return &Manager{
		eng:      eng,
		net:      net,
		reg:      reg,
		model:    model,
		inFlight: map[Service]int{},
		pending:  map[Service]units.Bytes{},
		stats:    map[Service]*ServiceStats{},
	}
}

// SetModel replaces the operation model (used when wiring a testbed).
func (m *Manager) SetModel(model OpModel) {
	if model == nil {
		model = IdentityModel{}
	}
	m.model = model
}

// SetMetrics attaches a collector; every operation completion then records
// bytes, op counts, and virtual-duration histograms per (tier, op).
func (m *Manager) SetMetrics(col *metrics.Collector) { m.col = col }

// OnReserve installs a hook that runs after every successful write/copy
// reservation, receiving the destination service. It fires after the
// operation is fully in flight, so the hook may itself start operations
// (the adaptation layer spills under the very reservation that crossed its
// high-water mark). A nil hook (the default) costs one nil check.
func (m *Manager) OnReserve(fn func(Service)) { m.onReserve = fn }

// observeOp records one completed operation leg. Durations are virtual
// seconds (engine time deltas) — the only clock this layer knows.
func (m *Manager) observeOp(svc Service, opKind string, size units.Bytes, dur float64) {
	if m.col == nil {
		return
	}
	k := metrics.Key{Tier: string(svc.Kind()), Op: opKind}
	m.col.Add(metrics.StorageBytesTotal, k, float64(size))
	m.col.Add(metrics.StorageOpsTotal, k, 1)
	m.col.Add(metrics.StorageOpSecondsTotal, k, dur)
	m.col.Observe(metrics.StorageOpSeconds, k, dur)
}

// Registry returns the file-location registry the manager updates.
func (m *Manager) Registry() *Registry { return m.reg }

// InFlight returns the number of operations currently running on svc.
func (m *Manager) InFlight(svc Service) int { return m.inFlight[svc] }

// PendingReserved returns the bytes reserved on svc by writes and copies
// still in flight (reservations not yet backed by a registered replica).
func (m *Manager) PendingReserved(svc Service) units.Bytes { return m.pending[svc] }

// Stats returns the accumulated statistics for svc.
func (m *Manager) Stats(svc Service) ServiceStats {
	if s := m.stats[svc]; s != nil {
		return *s
	}
	return ServiceStats{}
}

func (m *Manager) statsFor(svc Service) *ServiceStats {
	s := m.stats[svc]
	if s == nil {
		s = &ServiceStats{}
		m.stats[svc] = s
	}
	return s
}

func (m *Manager) adjust(ctx OpContext, base OpParams) OpParams {
	ctx.InFlight = m.inFlight[ctx.Service]
	ctx.Time = m.eng.Now()
	p := m.model.Adjust(ctx, base)
	if p.SizeFactor <= 0 {
		panic(fmt.Sprintf("storage: op model produced size factor %g", p.SizeFactor))
	}
	if p.Latency < 0 {
		panic(fmt.Sprintf("storage: op model produced latency %g", p.Latency))
	}
	return p
}

// Read starts reading f from svc into node. onDone runs at completion.
func (m *Manager) Read(node *platform.Node, f *workflow.File, svc Service, onDone func()) (*Op, error) {
	if !m.reg.Has(f, svc) {
		return nil, fmt.Errorf("storage: read %q from %s: no replica there", f.ID(), svc.Name())
	}
	params := m.adjust(
		OpContext{Kind: OpRead, Service: svc, Node: node, File: f},
		OpParams{Latency: svc.ReadLatency(), RateCap: svc.StreamCap(node), SizeFactor: 1},
	)
	op := &Op{Kind: OpRead, File: f, Service: svc, Node: node, Started: m.eng.Now(), mgr: m}
	m.inFlight[svc]++
	op.fl = m.net.StartFlow(
		float64(f.Size())*params.SizeFactor,
		svc.ReadPath(node),
		flow.Options{RateCap: float64(params.RateCap), Latency: params.Latency},
		func() {
			op.finished = true
			m.inFlight[svc]--
			st := m.statsFor(svc)
			st.BytesRead += f.Size()
			st.ReadOps++
			st.ReadSeconds += m.eng.Now() - op.Started
			m.observeOp(svc, metrics.OpRead, f.Size(), m.eng.Now()-op.Started)
			if onDone != nil {
				onDone()
			}
		},
	)
	return op, nil
}

// Write starts writing f from node to svc. Space is reserved up front; the
// replica registers when the write completes.
func (m *Manager) Write(node *platform.Node, f *workflow.File, svc Service, onDone func()) (*Op, error) {
	if err := svc.Reserve(f.Size()); err != nil {
		return nil, err
	}
	params := m.adjust(
		OpContext{Kind: OpWrite, Service: svc, Node: node, File: f},
		OpParams{Latency: svc.WriteLatency(), RateCap: svc.StreamCap(node), SizeFactor: 1},
	)
	op := &Op{Kind: OpWrite, File: f, Service: svc, Node: node, Started: m.eng.Now(), mgr: m, reserved: f.Size()}
	m.inFlight[svc]++
	m.pending[svc] += f.Size()
	op.fl = m.net.StartFlow(
		float64(f.Size())*params.SizeFactor,
		svc.WritePath(node),
		flow.Options{RateCap: float64(params.RateCap), Latency: params.Latency},
		func() {
			op.finished = true
			m.inFlight[svc]--
			m.pending[svc] -= f.Size()
			if m.reg.Has(f, svc) {
				// A concurrent operation already registered this replica
				// (e.g. two consumers relocating the same private-BB file to
				// the PFS); the duplicate's reservation must be returned or
				// the space leaks.
				svc.Release(f.Size())
			}
			m.reg.AddFrom(f, svc, node)
			st := m.statsFor(svc)
			st.BytesWritten += f.Size()
			st.WriteOps++
			st.WriteSeconds += m.eng.Now() - op.Started
			m.observeOp(svc, metrics.OpWrite, f.Size(), m.eng.Now()-op.Started)
			if onDone != nil {
				onDone()
			}
		},
	)
	if m.onReserve != nil {
		m.onReserve(svc)
	}
	return op, nil
}

// Copy stages f from src to dst through node: one flow across the
// concatenation of the read and write paths, bounded by the tighter stream
// cap, paying both services' latencies. Space is reserved on dst up front.
func (m *Manager) Copy(node *platform.Node, f *workflow.File, src, dst Service, onDone func()) (*Op, error) {
	if !m.reg.Has(f, src) {
		return nil, fmt.Errorf("storage: copy %q from %s: no replica there", f.ID(), src.Name())
	}
	if src == dst {
		return nil, fmt.Errorf("storage: copy %q onto itself (%s)", f.ID(), src.Name())
	}
	if err := dst.Reserve(f.Size()); err != nil {
		return nil, err
	}
	readCap := src.StreamCap(node)
	writeCap := dst.StreamCap(node)
	cap := readCap
	//bbvet:allow float-compare -- zero is the "uncapped" sentinel bandwidth, never a computed rate
	if cap == 0 || (writeCap > 0 && writeCap < cap) {
		cap = writeCap
	}
	params := m.adjust(
		OpContext{Kind: OpCopy, Service: dst, Source: src, Node: node, File: f},
		OpParams{Latency: src.ReadLatency() + dst.WriteLatency(), RateCap: cap, SizeFactor: 1},
	)
	path := append(append([]*flow.Resource{}, src.ReadPath(node)...), dst.WritePath(node)...)
	op := &Op{Kind: OpCopy, File: f, Service: dst, Source: src, Node: node, Started: m.eng.Now(), mgr: m, reserved: f.Size()}
	m.inFlight[dst]++
	m.pending[dst] += f.Size()
	op.fl = m.net.StartFlow(
		float64(f.Size())*params.SizeFactor,
		path,
		flow.Options{RateCap: float64(params.RateCap), Latency: params.Latency},
		func() {
			op.finished = true
			m.inFlight[dst]--
			m.pending[dst] -= f.Size()
			if m.reg.Has(f, dst) {
				// See Write: a racing duplicate's reservation is returned.
				dst.Release(f.Size())
			}
			m.reg.AddFrom(f, dst, node)
			dur := m.eng.Now() - op.Started
			sst := m.statsFor(src)
			sst.BytesRead += f.Size()
			sst.ReadOps++
			sst.ReadSeconds += dur
			dstStats := m.statsFor(dst)
			dstStats.BytesWritten += f.Size()
			dstStats.WriteOps++
			dstStats.WriteSeconds += dur
			m.observeOp(src, metrics.OpRead, f.Size(), dur)
			m.observeOp(dst, metrics.OpWrite, f.Size(), dur)
			if onDone != nil {
				onDone()
			}
		},
	)
	if m.onReserve != nil {
		m.onReserve(dst)
	}
	return op, nil
}

// Evict removes the replica of f on svc and frees its space.
func (m *Manager) Evict(f *workflow.File, svc Service) error {
	if !m.reg.Has(f, svc) {
		return fmt.Errorf("storage: evict %q from %s: no replica there", f.ID(), svc.Name())
	}
	m.reg.Remove(f, svc)
	svc.Release(f.Size())
	return nil
}
