package storage

import (
	"fmt"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/workflow"
)

// System assembles the storage side of a platform: the PFS plus either one
// shared burst buffer or one node-local burst buffer per compute node,
// together with the file registry and the operation manager.
type System struct {
	plat     *platform.Platform
	reg      *Registry
	mgr      *Manager
	pfs      Service
	sharedBB Service   // non-nil iff the platform has a shared BB
	nodeBB   []Service // indexed by node index; non-nil iff on-node BBs
}

// NewSystem instantiates storage services from the platform configuration.
// A nil model means the identity operation model.
func NewSystem(p *platform.Platform, model OpModel) *System {
	cfg := p.Config()
	s := &System{
		plat: p,
		reg:  NewRegistry(),
	}
	s.mgr = NewManager(p.Engine(), p.Network(), s.reg, model)
	s.pfs = NewRemote(p, "pfs", KindPFS, platform.BBModeNone, cfg.PFS)
	switch cfg.BBKind {
	case platform.BBShared:
		s.sharedBB = NewRemote(p, "bb", KindSharedBB, cfg.BBMode, cfg.BB)
	case platform.BBOnNode:
		for _, n := range p.Nodes() {
			s.nodeBB = append(s.nodeBB, NewNodeLocal(p, n, cfg.BB))
		}
	default:
		panic(fmt.Sprintf("storage: unknown BB kind %q", cfg.BBKind))
	}
	return s
}

// Platform returns the underlying platform.
func (s *System) Platform() *platform.Platform { return s.plat }

// Registry returns the file-location registry.
func (s *System) Registry() *Registry { return s.reg }

// Manager returns the operation manager.
func (s *System) Manager() *Manager { return s.mgr }

// PFS returns the parallel file system service.
func (s *System) PFS() Service { return s.pfs }

// SharedBB returns the shared burst buffer, or nil on an on-node platform.
func (s *System) SharedBB() Service { return s.sharedBB }

// BBFor returns the burst buffer a task on node targets: the shared BB on a
// shared platform, the node's own BB on an on-node platform.
func (s *System) BBFor(node *platform.Node) Service {
	if s.sharedBB != nil {
		return s.sharedBB
	}
	return s.nodeBB[node.Index()]
}

// AllBBs returns every burst-buffer service.
func (s *System) AllBBs() []Service {
	if s.sharedBB != nil {
		return []Service{s.sharedBB}
	}
	return append([]Service{}, s.nodeBB...)
}

// Services returns every storage service, PFS first.
func (s *System) Services() []Service {
	return append([]Service{s.pfs}, s.AllBBs()...)
}

// PlaceInitial registers f as already resident on svc (reserving its
// space), without simulating any transfer. Used to place workflow inputs on
// long-term storage before execution starts.
func (s *System) PlaceInitial(f *workflow.File, svc Service) error {
	if s.reg.Has(f, svc) {
		return fmt.Errorf("storage: file %q already on %s", f.ID(), svc.Name())
	}
	if err := svc.Reserve(f.Size()); err != nil {
		return err
	}
	s.reg.Add(f, svc)
	return nil
}

// AuditCapacity checks the capacity-accounting invariant on every service:
// the space a service reports as used must equal the bytes of the replicas
// the registry sees there plus the reservations of writes still in flight —
// no negative usage, no leaked space after evictions or cancelled
// operations. The execution engine asserts it at the end of every run; a
// violation always indicates an accounting bug (e.g. a failure-triggered
// replica teardown that dropped a registry entry without releasing space).
func (s *System) AuditCapacity() error {
	for _, svc := range s.Services() {
		used := svc.Used()
		if used < 0 {
			return fmt.Errorf("storage: %s: negative used capacity %v", svc.Name(), used)
		}
		expect := s.reg.BytesOn(svc) + s.mgr.PendingReserved(svc)
		diff := float64(used - expect)
		if diff < 0 {
			diff = -diff
		}
		// Tolerance: the tallies accumulate the same sizes in different
		// interleavings, so only float rounding may separate them.
		tol := 1e-6 * (1 + float64(expect))
		if diff > tol {
			return fmt.Errorf("storage: %s: capacity accounting drift: %v used, but %v resident + %v pending",
				svc.Name(), used, s.reg.BytesOn(svc), s.mgr.PendingReserved(svc))
		}
	}
	return nil
}

// BBStats sums the manager statistics across all burst-buffer services.
func (s *System) BBStats() ServiceStats {
	var total ServiceStats
	for _, bb := range s.AllBBs() {
		st := s.mgr.Stats(bb)
		total.BytesRead += st.BytesRead
		total.BytesWritten += st.BytesWritten
		total.ReadOps += st.ReadOps
		total.WriteOps += st.WriteOps
		total.ReadSeconds += st.ReadSeconds
		total.WriteSeconds += st.WriteSeconds
	}
	return total
}
