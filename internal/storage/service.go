// Package storage models the storage subsystems of an HPC platform: the
// parallel file system (PFS), remote shared burst buffers (Cori-style), and
// node-local burst buffers (Summit-style).
//
// Each service exposes the flow-resource paths that read and write
// operations traverse, per-operation latencies, a per-stream rate cap, and
// capacity accounting. The Manager (manager.go) starts operations on these
// paths and the Registry (registry.go) tracks which services hold which
// files.
package storage

import (
	"fmt"

	"bbwfsim/internal/flow"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
)

// Kind identifies the class of a storage service.
type Kind string

const (
	// KindPFS is the global parallel file system.
	KindPFS Kind = "pfs"
	// KindSharedBB is a remote shared burst buffer on dedicated nodes.
	KindSharedBB Kind = "shared-bb"
	// KindNodeBB is a node-local burst buffer.
	KindNodeBB Kind = "node-bb"
)

// Service is a storage subsystem operations can target.
type Service interface {
	// Name identifies the service, e.g. "pfs", "bb", "bb@cori-node002".
	Name() string
	// Kind reports the service class.
	Kind() Kind
	// Mode reports the allocation mode (shared BBs only; empty otherwise).
	Mode() platform.BBMode
	// ReadPath returns the resources a read from this service into node
	// traverses.
	ReadPath(node *platform.Node) []*flow.Resource
	// WritePath returns the resources a write from node to this service
	// traverses.
	WritePath(node *platform.Node) []*flow.Resource
	// ReadLatency and WriteLatency are the fixed per-operation costs.
	ReadLatency() float64
	WriteLatency() float64
	// StreamCap bounds a single stream's rate; 0 means unbounded.
	StreamCap(node *platform.Node) units.Bandwidth
	// Capacity is the total capacity (0 = unlimited); Used is currently
	// reserved space; Peak is the occupancy high-water mark over the run
	// (the storage_peak_bytes gauge of the observability layer).
	Capacity() units.Bytes
	Used() units.Bytes
	Peak() units.Bytes
	// Reserve claims space for a file about to be written; it fails when
	// the service is full. Release returns space (eviction).
	Reserve(size units.Bytes) error
	Release(size units.Bytes)
	// Local reports whether the service is local to the given node (no
	// network hop on access).
	Local(node *platform.Node) bool
}

// capacityTracker implements the Reserve/Release half of Service.
type capacityTracker struct {
	name     string
	capacity units.Bytes
	used     units.Bytes
	peak     units.Bytes
}

func (c *capacityTracker) Capacity() units.Bytes { return c.capacity }
func (c *capacityTracker) Used() units.Bytes     { return c.used }
func (c *capacityTracker) Peak() units.Bytes     { return c.peak }

func (c *capacityTracker) Reserve(size units.Bytes) error {
	if size < 0 {
		return fmt.Errorf("storage: %s: reserve negative size %v", c.name, size)
	}
	if c.capacity > 0 && c.used+size > c.capacity {
		return &FullError{Service: c.name, Capacity: c.capacity, Used: c.used, Requested: size}
	}
	c.used += size
	if c.used > c.peak {
		c.peak = c.used
	}
	return nil
}

func (c *capacityTracker) Release(size units.Bytes) {
	if size < 0 || c.used-size < -1e-6 {
		panic(fmt.Sprintf("storage: %s: release %v with %v used", c.name, size, c.used))
	}
	c.used -= size
	if c.used < 0 {
		c.used = 0
	}
}

// FullError reports a failed reservation on a capacity-limited service.
type FullError struct {
	Service   string
	Capacity  units.Bytes
	Used      units.Bytes
	Requested units.Bytes
}

func (e *FullError) Error() string {
	return fmt.Sprintf("storage: %s full: %v used of %v, cannot fit %v",
		e.Service, e.Used, e.Capacity, e.Requested)
}

// remoteService is a storage system behind the interconnect, shared by all
// compute nodes: the PFS or a Cori-style shared burst buffer. All traffic
// funnels through one network resource and one disk resource.
type remoteService struct {
	capacityTracker
	kind      Kind
	mode      platform.BBMode
	netRes    *flow.Resource // nil when NetworkBW is 0
	diskRes   *flow.Resource
	readLat   float64
	writeLat  float64
	streamCap units.Bandwidth
	// pathCache memoizes the per-node resource path: the path never changes
	// after construction, and building it fresh was one of the hottest
	// allocation sites of a run (every read/write hits it). Callers treat
	// returned paths as immutable.
	pathCache map[*platform.Node][]*flow.Resource
}

// NewRemote builds a remote shared service (PFS or shared BB) from its
// configuration, creating its network and disk resources on the platform's
// flow network.
func NewRemote(p *platform.Platform, name string, kind Kind, mode platform.BBMode, cfg platform.StorageConfig) Service {
	s := &remoteService{
		capacityTracker: capacityTracker{name: name, capacity: cfg.Capacity},
		kind:            kind,
		mode:            mode,
		diskRes:         p.Network().NewResource(name+"-disk", float64(cfg.DiskBW)),
		readLat:         cfg.ReadLatency,
		writeLat:        cfg.WriteLatency,
		streamCap:       cfg.StreamCap,
	}
	if cfg.NetworkBW > 0 {
		s.netRes = p.Network().NewResource(name+"-net", float64(cfg.NetworkBW))
	}
	return s
}

func (s *remoteService) Name() string          { return s.name }
func (s *remoteService) Kind() Kind            { return s.kind }
func (s *remoteService) Mode() platform.BBMode { return s.mode }
func (s *remoteService) ReadLatency() float64  { return s.readLat }
func (s *remoteService) WriteLatency() float64 { return s.writeLat }

func (s *remoteService) StreamCap(*platform.Node) units.Bandwidth { return s.streamCap }
func (s *remoteService) Local(*platform.Node) bool                { return false }

func (s *remoteService) path(node *platform.Node) []*flow.Resource {
	if p, ok := s.pathCache[node]; ok {
		return p
	}
	res := make([]*flow.Resource, 0, 3)
	if node != nil {
		res = append(res, node.Link())
	}
	if s.netRes != nil {
		res = append(res, s.netRes)
	}
	res = append(res, s.diskRes)
	if s.pathCache == nil {
		s.pathCache = map[*platform.Node][]*flow.Resource{}
	}
	s.pathCache[node] = res
	return res
}

func (s *remoteService) ReadPath(node *platform.Node) []*flow.Resource  { return s.path(node) }
func (s *remoteService) WritePath(node *platform.Node) []*flow.Resource { return s.path(node) }

// localService is a node-local burst buffer: an NVMe device inside one
// compute node. Access from the owning node touches only the local disk;
// access from another node crosses both nodes' links.
type localService struct {
	capacityTracker
	owner     *platform.Node
	diskRes   *flow.Resource
	readLat   float64
	writeLat  float64
	streamCap units.Bandwidth
	remoteCap units.Bandwidth // caps remote access (NVMe-over-fabric path)
	// pathCache as in remoteService: immutable per-node paths, built once.
	pathCache map[*platform.Node][]*flow.Resource
}

// NewNodeLocal builds the node-local burst buffer of one compute node.
func NewNodeLocal(p *platform.Platform, owner *platform.Node, cfg platform.StorageConfig) Service {
	name := "bb@" + owner.Name()
	return &localService{
		capacityTracker: capacityTracker{name: name, capacity: cfg.Capacity},
		owner:           owner,
		diskRes:         p.Network().NewResource(name+"-disk", float64(cfg.DiskBW)),
		readLat:         cfg.ReadLatency,
		writeLat:        cfg.WriteLatency,
		streamCap:       cfg.StreamCap,
		remoteCap:       cfg.NetworkBW,
	}
}

func (s *localService) Name() string          { return s.name }
func (s *localService) Kind() Kind            { return KindNodeBB }
func (s *localService) Mode() platform.BBMode { return platform.BBModeNone }
func (s *localService) ReadLatency() float64  { return s.readLat }
func (s *localService) WriteLatency() float64 { return s.writeLat }

func (s *localService) Local(node *platform.Node) bool { return node == s.owner }

func (s *localService) StreamCap(node *platform.Node) units.Bandwidth {
	if node == s.owner || node == nil {
		return s.streamCap
	}
	// Remote access is additionally bounded by the fabric path.
	//bbvet:allow float-compare -- zero is the "uncapped" sentinel bandwidth, never a computed rate
	if s.remoteCap > 0 && (s.streamCap == 0 || s.remoteCap < s.streamCap) {
		return s.remoteCap
	}
	return s.streamCap
}

func (s *localService) path(node *platform.Node) []*flow.Resource {
	if p, ok := s.pathCache[node]; ok {
		return p
	}
	var res []*flow.Resource
	if node == nil || node == s.owner {
		res = []*flow.Resource{s.diskRes}
	} else {
		res = []*flow.Resource{node.Link(), s.owner.Link(), s.diskRes}
	}
	if s.pathCache == nil {
		s.pathCache = map[*platform.Node][]*flow.Resource{}
	}
	s.pathCache[node] = res
	return res
}

func (s *localService) ReadPath(node *platform.Node) []*flow.Resource  { return s.path(node) }
func (s *localService) WritePath(node *platform.Node) []*flow.Resource { return s.path(node) }
