package storage

import (
	"fmt"
	"sort"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Registry tracks where file replicas live. A file may be resident on any
// number of services at once (e.g. a workflow input on the PFS and a staged
// copy on the burst buffer). Each replica remembers which compute node
// created it, which is what the private DataWarp mode's visibility rule
// ("access to files in the BB are limited to the compute node that created
// them", paper Section III-D) is enforced against.
type Registry struct {
	locations map[*workflow.File]map[Service]replica
	// resident tallies the bytes of all replicas per service, maintained
	// incrementally so the capacity-invariant audit (System.AuditCapacity)
	// is cheap. Updated in event order, hence deterministic.
	resident map[Service]units.Bytes
}

// replica is one copy of a file on one service. Stored by value: a replica
// is registered on every write completion, so a pointer here would be one
// heap allocation per I/O operation.
type replica struct {
	// creator is the compute node that wrote the replica; nil means the
	// replica pre-exists (initial placement) and is visible to everyone.
	creator *platform.Node
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		locations: map[*workflow.File]map[Service]replica{},
		resident:  map[Service]units.Bytes{},
	}
}

// Add records that svc holds a replica of f with no particular creator
// (visible from every node).
func (r *Registry) Add(f *workflow.File, svc Service) {
	r.AddFrom(f, svc, nil)
}

// AddFrom records that svc holds a replica of f created by node.
func (r *Registry) AddFrom(f *workflow.File, svc Service, node *platform.Node) {
	m := r.locations[f]
	if m == nil {
		m = map[Service]replica{}
		r.locations[f] = m
	}
	if _, held := m[svc]; !held {
		r.resident[svc] += f.Size()
	}
	m[svc] = replica{creator: node}
}

// Remove forgets the replica of f on svc. Removing an absent replica is a
// no-op.
func (r *Registry) Remove(f *workflow.File, svc Service) {
	if _, held := r.locations[f][svc]; held {
		r.resident[svc] -= f.Size()
	}
	delete(r.locations[f], svc)
}

// BytesOn returns the total size of the replicas svc currently holds.
func (r *Registry) BytesOn(svc Service) units.Bytes { return r.resident[svc] }

// FilesOn returns the files with a replica on svc, sorted by ID for
// deterministic teardown order (node-failure replica eviction).
func (r *Registry) FilesOn(svc Service) []*workflow.File {
	var files []*workflow.File
	//bbvet:ordered -- collected files are sorted by ID immediately below
	for f, m := range r.locations {
		if _, held := m[svc]; held {
			files = append(files, f)
		}
	}
	sort.Slice(files, func(i, j int) bool { return files[i].ID() < files[j].ID() })
	return files
}

// Has reports whether svc holds a replica of f.
func (r *Registry) Has(f *workflow.File, svc Service) bool {
	_, held := r.locations[f][svc]
	return held
}

// Creator returns the node that created the replica of f on svc, or nil
// when the replica pre-exists or is absent.
func (r *Registry) Creator(f *workflow.File, svc Service) *platform.Node {
	return r.locations[f][svc].creator
}

// Locations returns the services holding f, sorted by name for determinism.
func (r *Registry) Locations(f *workflow.File) []Service {
	var svcs []Service
	//bbvet:ordered -- collected services are sorted by name immediately below
	for svc := range r.locations[f] {
		svcs = append(svcs, svc)
	}
	sort.Slice(svcs, func(i, j int) bool { return svcs[i].Name() < svcs[j].Name() })
	return svcs
}

// Located reports whether any service holds f.
func (r *Registry) Located(f *workflow.File) bool {
	return len(r.locations[f]) > 0
}

// Best picks the replica of f a task on node should read: a node-local BB
// on that node beats any other burst buffer, which beats the PFS. Ties are
// broken by service name. It returns an error when no replica exists.
func (r *Registry) Best(f *workflow.File, node *platform.Node) (Service, error) {
	return r.BestVisible(f, node, false)
}

// BestVisible is Best with optional enforcement of the private DataWarp
// visibility rule: when enforcePrivate is set, replicas on a private-mode
// shared burst buffer that were created by a *different* compute node are
// invisible, and the reader falls back to another replica (typically the
// PFS).
func (r *Registry) BestVisible(f *workflow.File, node *platform.Node, enforcePrivate bool) (Service, error) {
	var best Service
	bestRank := -1
	// This runs once per read operation, so it must not allocate: instead
	// of ranging over name-sorted Locations, reduce over the map under the
	// total order (rank desc, name asc) — the maximum of a total order is
	// the same service regardless of iteration order.
	//bbvet:ordered -- order-insensitive max-reduction: (rank, name) is a total order over candidates
	for svc, rep := range r.locations[f] {
		if enforcePrivate && svc.Kind() == KindSharedBB && svc.Mode() == platform.BBPrivate {
			if c := rep.creator; c != nil && c != node {
				continue
			}
		}
		rank := 0
		switch {
		case svc.Kind() == KindNodeBB && svc.Local(node):
			rank = 3
		case svc.Kind() == KindNodeBB:
			rank = 2
		case svc.Kind() == KindSharedBB:
			rank = 2
		case svc.Kind() == KindPFS:
			rank = 1
		}
		if rank > bestRank || (rank == bestRank && svc.Name() < best.Name()) {
			bestRank = rank
			best = svc
		}
	}
	if best == nil {
		return nil, fmt.Errorf("storage: file %q has no replica", f.ID())
	}
	return best, nil
}
