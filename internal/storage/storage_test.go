package storage

import (
	"math"
	"testing"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// coriSystem builds a single-node Cori-like system with no stream caps or
// latencies, so durations are exact bandwidth arithmetic.
func coriSystem(t *testing.T, mode platform.BBMode) (*sim.Engine, *System, *workflow.Workflow) {
	t.Helper()
	e := sim.NewEngine()
	cfg := platform.Cori(1, mode)
	cfg.PFS.StreamCap = 0
	cfg.BB.StreamCap = 0
	p := platform.MustNew(e, cfg)
	return e, NewSystem(p, nil), workflow.New("wf")
}

func summitSystem(t *testing.T, nodes int) (*sim.Engine, *System, *workflow.Workflow) {
	t.Helper()
	e := sim.NewEngine()
	cfg := platform.Summit(nodes)
	cfg.PFS.StreamCap = 0
	cfg.BB.StreamCap = 0
	p := platform.MustNew(e, cfg)
	return e, NewSystem(p, nil), workflow.New("wf")
}

func TestPFSReadDuration(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 100*units.MB)
	if err := sys.PlaceInitial(f, sys.PFS()); err != nil {
		t.Fatal(err)
	}
	var done float64 = -1
	node := sys.Platform().Node(0)
	if _, err := sys.Manager().Read(node, f, sys.PFS(), func() { done = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// PFS disk 100 MB/s is the bottleneck → 1 s.
	if !approx(done, 1.0, 1e-9) {
		t.Errorf("PFS read of 100MB finished at %v, want 1.0", done)
	}
}

func TestSharedBBWriteDurationAndRegistration(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 800*units.MB)
	bb := sys.BBFor(sys.Platform().Node(0))
	if bb.Kind() != KindSharedBB || bb.Mode() != platform.BBPrivate {
		t.Fatalf("BBFor returned %v/%v", bb.Kind(), bb.Mode())
	}
	var done float64 = -1
	if _, err := sys.Manager().Write(sys.Platform().Node(0), f, bb, func() { done = e.Now() }); err != nil {
		t.Fatal(err)
	}
	if !approx(float64(bb.Used()), 800e6, 1e-9) {
		t.Errorf("reservation not taken at write start: used=%v", bb.Used())
	}
	if sys.Registry().Has(f, bb) {
		t.Error("replica registered before write completion")
	}
	e.Run()
	// BB network 800 MB/s binds (disk is 950) → 1 s.
	if !approx(done, 1.0, 1e-9) {
		t.Errorf("BB write of 800MB finished at %v, want 1.0", done)
	}
	if !sys.Registry().Has(f, bb) {
		t.Error("replica not registered after write")
	}
}

func TestReadWithoutReplicaFails(t *testing.T) {
	_, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 1*units.MB)
	if _, err := sys.Manager().Read(sys.Platform().Node(0), f, sys.PFS(), nil); err == nil {
		t.Error("read of unplaced file succeeded")
	}
}

func TestCapacityFull(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	bb := sys.SharedBB()
	big := w.MustAddFile("big", bb.Capacity())
	over := w.MustAddFile("over", 1*units.MB)
	node := sys.Platform().Node(0)
	if _, err := sys.Manager().Write(node, big, bb, nil); err != nil {
		t.Fatalf("first write rejected: %v", err)
	}
	_, err := sys.Manager().Write(node, over, bb, nil)
	if err == nil {
		t.Fatal("write beyond capacity succeeded")
	}
	if _, ok := err.(*FullError); !ok {
		t.Errorf("error type %T, want *FullError", err)
	}
	e.Run()
}

func TestCopyStagesFile(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBStriped)
	f := w.MustAddFile("f", 100*units.MB)
	if err := sys.PlaceInitial(f, sys.PFS()); err != nil {
		t.Fatal(err)
	}
	node := sys.Platform().Node(0)
	bb := sys.BBFor(node)
	var done float64 = -1
	if _, err := sys.Manager().Copy(node, f, sys.PFS(), bb, func() { done = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// The PFS disk (100 MB/s) bottlenecks the copy → 1 s.
	if !approx(done, 1.0, 1e-9) {
		t.Errorf("copy finished at %v, want 1.0", done)
	}
	if !sys.Registry().Has(f, bb) || !sys.Registry().Has(f, sys.PFS()) {
		t.Error("copy should leave replicas on both services")
	}
}

func TestCopyToSelfFails(t *testing.T) {
	_, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 1*units.MB)
	if err := sys.PlaceInitial(f, sys.PFS()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager().Copy(sys.Platform().Node(0), f, sys.PFS(), sys.PFS(), nil); err == nil {
		t.Error("copy onto itself succeeded")
	}
}

func TestOnNodeBBLocalAndRemote(t *testing.T) {
	e, sys, w := summitSystem(t, 2)
	n0, n1 := sys.Platform().Node(0), sys.Platform().Node(1)
	bb0 := sys.BBFor(n0)
	if bb0.Kind() != KindNodeBB || !bb0.Local(n0) || bb0.Local(n1) {
		t.Fatal("node BB locality wrong")
	}
	if sys.BBFor(n1) == bb0 {
		t.Fatal("nodes share an on-node BB")
	}
	f := w.MustAddFile("f", 3.3*1000*units.MB)
	var wrote float64 = -1
	if _, err := sys.Manager().Write(n0, f, bb0, func() { wrote = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Local write: only the 3.3 GB/s NVMe in the path → 1 s.
	if !approx(wrote, 1.0, 1e-9) {
		t.Errorf("local BB write finished at %v, want 1.0", wrote)
	}
	// Remote read from n1 crosses both links and the disk.
	var read float64 = -1
	if _, err := sys.Manager().Read(n1, f, bb0, func() { read = e.Now() }); err != nil {
		t.Fatal(err)
	}
	start := e.Now()
	e.Run()
	if !approx(read-start, 1.0, 1e-9) { // disk still the bottleneck
		t.Errorf("remote BB read took %v, want 1.0", read-start)
	}
}

func TestRemoteStreamCapOnNodeBB(t *testing.T) {
	e := sim.NewEngine()
	cfg := platform.Summit(2)
	cfg.BB.StreamCap = 0
	cfg.BB.NetworkBW = 1 * units.GBps // fabric caps remote access
	p := platform.MustNew(e, cfg)
	sys := NewSystem(p, nil)
	w := workflow.New("wf")
	f := w.MustAddFile("f", 1000*units.MB)
	n0, n1 := p.Node(0), p.Node(1)
	bb0 := sys.BBFor(n0)
	sys.Manager().Write(n0, f, bb0, nil)
	e.Run()
	var read float64 = -1
	start := e.Now()
	if _, err := sys.Manager().Read(n1, f, bb0, func() { read = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !approx(read-start, 1.0, 1e-9) { // capped at 1 GB/s
		t.Errorf("remote capped read took %v, want 1.0", read-start)
	}
}

func TestRegistryBestPrefersLocalBB(t *testing.T) {
	_, sys, w := summitSystem(t, 2)
	n0, n1 := sys.Platform().Node(0), sys.Platform().Node(1)
	f := w.MustAddFile("f", 1*units.MB)
	reg := sys.Registry()
	reg.Add(f, sys.PFS())
	reg.Add(f, sys.BBFor(n0))
	best, err := reg.Best(f, n0)
	if err != nil || best != sys.BBFor(n0) {
		t.Errorf("Best on n0 = %v, want local BB", best)
	}
	// From n1 the remote node BB still beats the PFS.
	best, err = reg.Best(f, n1)
	if err != nil || best.Kind() != KindNodeBB {
		t.Errorf("Best on n1 = %v, want node BB", best)
	}
}

func TestRegistryBestNoReplica(t *testing.T) {
	_, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 1*units.MB)
	if _, err := sys.Registry().Best(f, sys.Platform().Node(0)); err == nil {
		t.Error("Best on unplaced file succeeded")
	}
}

func TestEvictFreesSpace(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 10*units.MB)
	bb := sys.SharedBB()
	sys.Manager().Write(sys.Platform().Node(0), f, bb, nil)
	e.Run()
	if err := sys.Manager().Evict(f, bb); err != nil {
		t.Fatal(err)
	}
	if bb.Used() != 0 {
		t.Errorf("Used = %v after evict, want 0", bb.Used())
	}
	if sys.Registry().Has(f, bb) {
		t.Error("replica still registered after evict")
	}
	if err := sys.Manager().Evict(f, bb); err == nil {
		t.Error("double evict succeeded")
	}
}

func TestCancelWriteReleasesReservation(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 100*units.MB)
	bb := sys.SharedBB()
	node := sys.Platform().Node(0)
	op, err := sys.Manager().Write(node, f, bb, func() { t.Error("cancelled write callback ran") })
	if err != nil {
		t.Fatal(err)
	}
	e.After(0.01, func() { op.Cancel() })
	e.Run()
	if bb.Used() != 0 {
		t.Errorf("Used = %v after cancel, want 0", bb.Used())
	}
	if sys.Registry().Has(f, bb) {
		t.Error("cancelled write registered a replica")
	}
	if sys.Manager().InFlight(bb) != 0 {
		t.Errorf("InFlight = %d after cancel, want 0", sys.Manager().InFlight(bb))
	}
}

func TestInFlightCounting(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	node := sys.Platform().Node(0)
	for i := 0; i < 3; i++ {
		f := w.MustAddFile(string(rune('a'+i)), 50*units.MB)
		sys.PlaceInitial(f, sys.PFS())
		sys.Manager().Read(node, f, sys.PFS(), nil)
	}
	if got := sys.Manager().InFlight(sys.PFS()); got != 3 {
		t.Errorf("InFlight = %d, want 3", got)
	}
	e.Run()
	if got := sys.Manager().InFlight(sys.PFS()); got != 0 {
		t.Errorf("InFlight = %d after run, want 0", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	node := sys.Platform().Node(0)
	bb := sys.SharedBB()
	f1 := w.MustAddFile("f1", 80*units.MB)
	f2 := w.MustAddFile("f2", 160*units.MB)
	sys.Manager().Write(node, f1, bb, nil)
	sys.Manager().Write(node, f2, bb, nil)
	e.Run()
	st := sys.Manager().Stats(bb)
	if st.WriteOps != 2 || st.BytesWritten != 240*units.MB {
		t.Errorf("stats = %+v, want 2 ops / 240 MB", st)
	}
	if st.WriteBandwidth() <= 0 {
		t.Error("WriteBandwidth not positive")
	}
	// Aggregate via System.
	agg := sys.BBStats()
	if agg.BytesWritten != 240*units.MB {
		t.Errorf("BBStats bytes = %v, want 240 MB", agg.BytesWritten)
	}
}

// latencyModel doubles latency and stretches transfers by 1.5×.
type latencyModel struct{}

func (latencyModel) Adjust(_ OpContext, base OpParams) OpParams {
	base.Latency = base.Latency*2 + 1
	base.SizeFactor = 1.5
	return base
}

func TestOpModelAdjusts(t *testing.T) {
	e := sim.NewEngine()
	cfg := platform.Cori(1, platform.BBPrivate)
	cfg.PFS.StreamCap = 0
	p := platform.MustNew(e, cfg)
	sys := NewSystem(p, latencyModel{})
	w := workflow.New("wf")
	f := w.MustAddFile("f", 100*units.MB)
	sys.PlaceInitial(f, sys.PFS())
	var done float64 = -1
	sys.Manager().Read(p.Node(0), f, sys.PFS(), func() { done = e.Now() })
	e.Run()
	// Latency 0*2+1 = 1 s, transfer 150 MB effective at 100 MB/s = 1.5 s.
	if !approx(done, 2.5, 1e-9) {
		t.Errorf("modeled read finished at %v, want 2.5", done)
	}
	// Stats record the logical size, not the stretched volume.
	if st := sys.Manager().Stats(sys.PFS()); st.BytesRead != 100*units.MB {
		t.Errorf("BytesRead = %v, want logical 100 MB", st.BytesRead)
	}
}

func TestStreamCapLimitsSingleStream(t *testing.T) {
	e := sim.NewEngine()
	cfg := platform.Cori(1, platform.BBPrivate) // BB stream cap 160 MB/s
	p := platform.MustNew(e, cfg)
	sys := NewSystem(p, nil)
	w := workflow.New("wf")
	f := w.MustAddFile("f", 160*units.MB)
	var done float64 = -1
	sys.Manager().Write(p.Node(0), f, sys.SharedBB(), func() { done = e.Now() })
	e.Run()
	// One stream is capped at 160 MB/s even though the BB path allows 800.
	if !approx(done, 1.0, 1e-9) {
		t.Errorf("capped write finished at %v, want 1.0", done)
	}
}

func TestConcurrentStreamsSaturateSharedBB(t *testing.T) {
	e := sim.NewEngine()
	cfg := platform.Cori(1, platform.BBPrivate)
	p := platform.MustNew(e, cfg)
	sys := NewSystem(p, nil)
	w := workflow.New("wf")
	node := p.Node(0)
	// 10 concurrent streams of 160 MB: aggregate demand 1600 MB/s exceeds
	// the 800 MB/s BB network link → each gets 80 MB/s → 2 s.
	var last float64
	for i := 0; i < 10; i++ {
		f := w.MustAddFile(string(rune('a'+i)), 160*units.MB)
		sys.Manager().Write(node, f, sys.SharedBB(), func() { last = e.Now() })
	}
	e.Run()
	if !approx(last, 2.0, 1e-9) {
		t.Errorf("10 concurrent capped writes finished at %v, want 2.0", last)
	}
}

func TestPlaceInitialDuplicate(t *testing.T) {
	_, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 1*units.MB)
	if err := sys.PlaceInitial(f, sys.PFS()); err != nil {
		t.Fatal(err)
	}
	if err := sys.PlaceInitial(f, sys.PFS()); err == nil {
		t.Error("duplicate PlaceInitial succeeded")
	}
}

func TestServicesEnumeration(t *testing.T) {
	_, sysCori, _ := coriSystem(t, platform.BBPrivate)
	if got := len(sysCori.Services()); got != 2 { // pfs + shared bb
		t.Errorf("Cori services = %d, want 2", got)
	}
	_, sysSummit, _ := summitSystem(t, 3)
	if got := len(sysSummit.Services()); got != 4 { // pfs + 3 node BBs
		t.Errorf("Summit services = %d, want 4", got)
	}
	if sysSummit.SharedBB() != nil {
		t.Error("Summit reports a shared BB")
	}
}

func TestCancelCopyReleasesReservation(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 100*units.MB)
	sys.PlaceInitial(f, sys.PFS())
	bb := sys.SharedBB()
	node := sys.Platform().Node(0)
	op, err := sys.Manager().Copy(node, f, sys.PFS(), bb, func() {
		t.Error("cancelled copy callback ran")
	})
	if err != nil {
		t.Fatal(err)
	}
	e.After(0.01, func() { op.Cancel() })
	e.Run()
	if bb.Used() != 0 {
		t.Errorf("Used = %v after cancelled copy, want 0", bb.Used())
	}
	if sys.Registry().Has(f, bb) {
		t.Error("cancelled copy registered a replica")
	}
	// Double cancel is a no-op.
	op.Cancel()
}

func TestCopySourceMissing(t *testing.T) {
	_, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 1*units.MB)
	if _, err := sys.Manager().Copy(sys.Platform().Node(0), f, sys.PFS(), sys.SharedBB(), nil); err == nil {
		t.Error("copy from a service without the file succeeded")
	}
}

func TestSetModelSwapsAtRuntime(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 100*units.MB)
	sys.PlaceInitial(f, sys.PFS())
	sys.Manager().SetModel(latencyModel{})
	var done float64
	sys.Manager().Read(sys.Platform().Node(0), f, sys.PFS(), func() { done = e.Now() })
	e.Run()
	// latencyModel: latency 1s + 150MB effective at 100MB/s (PFS disk).
	if !approx(done, 2.5, 1e-9) {
		t.Errorf("swapped model read = %v, want 2.5", done)
	}
	sys.Manager().SetModel(nil) // back to identity; no panic
}

func TestCreatorTracking(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBPrivate)
	f := w.MustAddFile("f", 10*units.MB)
	node := sys.Platform().Node(0)
	sys.Manager().Write(node, f, sys.SharedBB(), nil)
	e.Run()
	if got := sys.Registry().Creator(f, sys.SharedBB()); got != node {
		t.Errorf("Creator = %v, want %v", got, node)
	}
	if got := sys.Registry().Creator(f, sys.PFS()); got != nil {
		t.Errorf("Creator on absent replica = %v, want nil", got)
	}
	g := w.MustAddFile("g", 1*units.MB)
	sys.PlaceInitial(g, sys.PFS())
	if got := sys.Registry().Creator(g, sys.PFS()); got != nil {
		t.Errorf("Creator of initial placement = %v, want nil (visible everywhere)", got)
	}
}
