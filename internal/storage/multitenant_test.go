package storage

import (
	"testing"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// TestConcurrentTenantsShareOneReplica is the multi-tenant regression for
// the registry's single-replica-per-service model: two compute nodes —
// two tenants of one shared burst buffer — stage and write the same files
// concurrently. Each racing pair must land exactly one replica's worth of
// space (the duplicate's reservation is returned on completion), the
// capacity audit must hold while both reservations are in flight, and the
// replica's creator must be the last completer — the documented
// last-writer-wins semantic the private-mode visibility rule reads.
func TestConcurrentTenantsShareOneReplica(t *testing.T) {
	e := sim.NewEngine()
	cfg := platform.Cori(2, platform.BBPrivate)
	cfg.PFS.StreamCap = 0
	cfg.BB.StreamCap = 0
	p := platform.MustNew(e, cfg)
	sys := NewSystem(p, nil)
	w := workflow.New("wf")
	node0, node1 := p.Node(0), p.Node(1)
	bb := sys.BBFor(node0)
	audit := func(step string) {
		t.Helper()
		if err := sys.AuditCapacity(); err != nil {
			t.Fatalf("after %s: %v", step, err)
		}
	}

	// Two tenants stage the same shared input PFS→BB at the same instant.
	f := w.MustAddFile("shared-input", 100*units.MB)
	if err := sys.PlaceInitial(f, sys.PFS()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager().Copy(node0, f, sys.PFS(), bb, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager().Copy(node1, f, sys.PFS(), bb, nil); err != nil {
		t.Fatal(err)
	}
	// Both reservations are pending: used = 2 sizes, resident = 0.
	if got, want := bb.Used(), 2*f.Size(); got != want {
		t.Fatalf("bb used %v with duplicate stages in flight, want %v", got, want)
	}
	audit("duplicate stages in flight")
	e.Run()
	audit("duplicate stages completed")
	if got, want := bb.Used(), f.Size(); got != want {
		t.Fatalf("bb used %v after duplicate stages, want one replica %v", got, want)
	}
	if got, want := sys.Registry().BytesOn(bb), f.Size(); got != want {
		t.Fatalf("registry sees %v on the BB, want %v", got, want)
	}

	// Creator is the last completer (both copies start together, so the
	// second submission completes second): under the private-mode
	// visibility rule the surviving replica belongs to that tenant, and
	// the other tenant falls back to the PFS.
	if got := sys.Registry().Creator(f, bb); got != node1 {
		t.Errorf("replica creator = %v, want the last completer %v", got, node1)
	}
	if svc, err := sys.Registry().BestVisible(f, node1, true); err != nil || svc != bb {
		t.Errorf("creator tenant reads from %v (%v), want the BB", svc, err)
	}
	if svc, err := sys.Registry().BestVisible(f, node0, true); err != nil || svc != sys.PFS() {
		t.Errorf("other tenant reads from %v (%v), want the PFS fallback", svc, err)
	}

	// The same race on the write path: both tenants write one output.
	g := w.MustAddFile("shared-output", 64*units.MB)
	if _, err := sys.Manager().Write(node0, g, bb, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager().Write(node1, g, bb, nil); err != nil {
		t.Fatal(err)
	}
	audit("duplicate writes in flight")
	e.Run()
	audit("duplicate writes completed")
	if got, want := bb.Used(), f.Size()+g.Size(); got != want {
		t.Fatalf("bb used %v after duplicate writes, want %v", got, want)
	}

	// One eviction per file frees the space completely.
	for _, file := range sys.Registry().FilesOn(bb) {
		if err := sys.Manager().Evict(file, bb); err != nil {
			t.Fatal(err)
		}
		audit("eviction of " + file.ID())
	}
	if bb.Used() != 0 {
		t.Fatalf("bb used %v after evicting everything, want 0", bb.Used())
	}
}
