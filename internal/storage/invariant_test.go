package storage

import (
	"strings"
	"testing"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
)

// TestAuditCapacityThroughLifecycle drives a burst buffer through the full
// replica lifecycle — writes, a cancelled write, a copy, a cancelled copy,
// racing duplicate relocations, and evictions — auditing the capacity
// invariant (used = resident + pending, never negative) at every step.
func TestAuditCapacityThroughLifecycle(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBStriped)
	node := sys.Platform().Node(0)
	bb := sys.BBFor(node)
	audit := func(step string) {
		t.Helper()
		if err := sys.AuditCapacity(); err != nil {
			t.Fatalf("after %s: %v", step, err)
		}
	}
	audit("empty system")

	a := w.MustAddFile("a", 100*units.MB)
	b := w.MustAddFile("b", 200*units.MB)
	c := w.MustAddFile("c", 50*units.MB)
	if err := sys.PlaceInitial(c, sys.PFS()); err != nil {
		t.Fatal(err)
	}

	// Write a and b; cancel b mid-flight, which must return its reservation.
	if _, err := sys.Manager().Write(node, a, bb, nil); err != nil {
		t.Fatal(err)
	}
	opB, err := sys.Manager().Write(node, b, bb, nil)
	if err != nil {
		t.Fatal(err)
	}
	audit("writes started (reservations pending)")
	e.After(0.05, func() {
		opB.Cancel()
		if err := sys.AuditCapacity(); err != nil {
			t.Errorf("after cancelled write: %v", err)
		}
	})
	e.Run()
	audit("write completed, cancelled write rolled back")
	if got, want := bb.Used(), a.Size(); got != want {
		t.Fatalf("bb used %v after cancel, want %v", got, want)
	}

	// Copy c to the BB twice concurrently: the duplicate's reservation must
	// be released when the first copy registers the replica.
	if _, err := sys.Manager().Copy(node, c, sys.PFS(), bb, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager().Copy(node, c, sys.PFS(), bb, nil); err != nil {
		t.Fatal(err)
	}
	audit("duplicate copies in flight")
	e.Run()
	audit("duplicate copies completed")
	if got, want := bb.Used(), a.Size()+c.Size(); got != want {
		t.Fatalf("bb used %v after duplicate copies, want %v", got, want)
	}

	// A cancelled copy also returns its reservation.
	d := w.MustAddFile("d", 75*units.MB)
	if err := sys.PlaceInitial(d, sys.PFS()); err != nil {
		t.Fatal(err)
	}
	opD, err := sys.Manager().Copy(node, d, sys.PFS(), bb, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.After(0.01, func() { opD.Cancel() })
	e.Run()
	audit("cancelled copy rolled back")

	// Evictions free exactly the evicted bytes.
	for _, f := range sys.Registry().FilesOn(bb) {
		if err := sys.Manager().Evict(f, bb); err != nil {
			t.Fatal(err)
		}
		audit("eviction of " + f.ID())
	}
	if bb.Used() != 0 {
		t.Fatalf("bb used %v after evicting everything, want 0", bb.Used())
	}
}

// TestAuditCapacityDetectsDrift corrupts the accounting on purpose and
// checks the audit actually reports it — a canary for the canary.
func TestAuditCapacityDetectsDrift(t *testing.T) {
	e, sys, w := coriSystem(t, platform.BBStriped)
	node := sys.Platform().Node(0)
	bb := sys.BBFor(node)
	f := w.MustAddFile("f", 100*units.MB)
	if _, err := sys.Manager().Write(node, f, bb, nil); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Leak: drop the registry entry without releasing the space.
	sys.Registry().Remove(f, bb)
	err := sys.AuditCapacity()
	if err == nil {
		t.Fatal("audit missed a leaked reservation")
	}
	if !strings.Contains(err.Error(), "drift") {
		t.Errorf("audit error %q does not mention drift", err)
	}
	// Negative usage is impossible by construction: over-releasing panics
	// at the service level before the audit could even see it.
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	bb.Release(2 * f.Size())
}
