package flow

import (
	"runtime"

	"bbwfsim/internal/sim"
)

// RecomputeAllocsPerRun measures the allocations per call of the rate
// recompute on a warmed network, for the benchmark ledger (cmd/bbbench).
// The steady-state contract is zero: once the touched/finished scratch has
// grown to fit, every subsequent recompute reuses it. The measurement lives
// in this package because the recompute hook is deliberately unexported;
// TestRecomputeZeroAllocs asserts the same property in tier-1.
func RecomputeAllocsPerRun() float64 {
	e := sim.NewEngine()
	n := NewNetwork(e)
	link := n.NewResource("link", 1000)
	disk := n.NewResource("disk", 800)
	// Warm up the scratch: a first wave grows the slices to capacity.
	for j := 0; j < 8; j++ {
		n.StartFlow(float64(10+j), []*Resource{link, disk}, Options{}, nil)
	}
	e.Run()
	// Steady state: long-lived flows already active, measure recompute alone
	// (arming the next-completion event allocates a sim.Event by design, so
	// schedule is out of scope — same carve-out as the tier-1 test).
	for j := 0; j < 8; j++ {
		n.StartFlow(1e12, []*Resource{link, disk}, Options{}, nil)
	}
	const runs = 100
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		n.recompute()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}
