// Package flow implements the fluid resource-sharing model used for all
// network, disk, and (optionally) compute activity in the simulator.
//
// The model is the one SimGrid validated for flow-level network simulation:
// each active transfer ("flow") traverses a path of capacity-constrained
// resources, and the instantaneous rates of all concurrent flows are the
// max-min fair allocation computed by progressive filling. A flow may also
// carry a per-flow rate cap, which models POSIX single-stream throughput —
// the reason the paper observes saturation "although usage is far below the
// peak" of the burst buffer.
//
// Whenever the set of active flows changes, rates are recomputed and the
// single next-completion event is rescheduled. Between changes every flow
// progresses linearly, so the simulation cost is independent of transfer
// sizes: per change, progressive filling visits only the resources actually
// crossed by an active flow (idle resources cost nothing) and computes the
// next completion as a side product — no separate scan of the active set.
// All scratch is pooled on the Network, so the steady state allocates
// nothing.
package flow

import (
	"fmt"
	"math"

	"bbwfsim/internal/sim"
)

// Resource is a capacity-constrained entity (network link, disk, ...).
// Concurrent flows crossing a resource share its capacity max-min fairly.
type Resource struct {
	name     string
	capacity float64 // units per second (> 0)

	processed float64 // total units pushed through, for accounting/tests

	// scratch state used during recompute; owned by the Network. gen marks
	// the recompute that last initialized it, so idle resources cost
	// nothing: a resource crossed by no active flow is never visited.
	avail float64
	count int
	gen   uint64
}

// Name returns the resource's identifier.
func (r *Resource) Name() string { return r.name }

// Capacity returns the resource's capacity in units per second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Processed returns the total number of units this resource has carried.
func (r *Resource) Processed() float64 { return r.processed }

// Flow is one in-progress transfer.
type Flow struct {
	net       *Network
	path      []*Resource
	remaining float64
	amount    float64
	rateCap   float64 // +Inf when uncapped
	rate      float64
	onDone    func()
	started   float64 // virtual time the flow became active
	latEv     sim.Handle
	active    bool
	done      bool
	frozen    bool // scratch for progressive filling
}

// Rate returns the flow's current allocated rate in units per second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the units left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Done reports whether the flow has completed or been cancelled.
func (f *Flow) Done() bool { return f.done }

// Options tunes a flow started with StartFlow.
type Options struct {
	// RateCap bounds the flow's rate regardless of resource availability.
	// Zero (or negative) means uncapped.
	RateCap float64
	// Latency delays the flow's activation by a fixed duration. During the
	// latency the flow holds no resources.
	Latency float64
}

// Network owns a set of resources and the active flows crossing them.
type Network struct {
	eng       *sim.Engine
	resources []*Resource
	active    []*Flow
	settled   float64 // virtual time of the last settle
	nextEv    sim.Handle

	// Hot-path scratch, reused across recomputes so the steady state
	// allocates nothing (asserted by TestRecomputeZeroAllocs):
	gen          uint64      // recompute generation, stamps Resource.gen
	touched      []*Resource // resources crossed by ≥1 active flow
	finished     []*Flow     // completion batch, collected per event
	minDt        float64     // next completion delay, folded into recompute
	completionFn func()      // bound n.onCompletion, hoisted once

	stats Stats // cumulative solver counters, read post-run
}

// Stats are the solver's cumulative work counters: how many rate
// recomputes ran, how many progressive-filling rounds they took in total,
// and how many flows were started. They are plain integers bumped on the
// hot path — no collector indirection, no allocation — so instrumentation
// keeps the zero-steady-state-allocation contract (TestRecomputeZeroAllocs)
// intact; the observability layer (internal/metrics) reads them once per
// run through Stats.
type Stats struct {
	Recomputes   uint64
	FreezeRounds uint64
	FlowsStarted uint64
}

// NewNetwork returns an empty network bound to the engine.
func NewNetwork(eng *sim.Engine) *Network {
	if eng == nil {
		panic("flow: nil engine")
	}
	n := &Network{eng: eng, settled: eng.Now(), minDt: math.Inf(1)}
	n.completionFn = n.onCompletion
	return n
}

// Engine returns the engine the network schedules on.
func (n *Network) Engine() *sim.Engine { return n.eng }

// NewResource registers a resource with the given capacity (> 0).
func (n *Network) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("flow: resource %q capacity must be positive and finite, got %g", name, capacity))
	}
	r := &Resource{name: name, capacity: capacity}
	n.resources = append(n.resources, r)
	return r
}

// ActiveFlows returns the number of currently active flows.
func (n *Network) ActiveFlows() int { return len(n.active) }

// Reset prepares the network for another run on the same resources after
// its engine was Reset: the settle clock, solver counters, and per-resource
// processed totals return to zero while the registered resources and the
// hot-path scratch (and its warmed-up capacity) are kept. Resetting with
// flows still active panics — cancel or drain them first. The recompute
// generation is deliberately NOT reset: it only ever grows, so stale
// Resource.gen stamps from the previous run read as "not yet visited".
func (n *Network) Reset() {
	if len(n.active) > 0 {
		panic(fmt.Sprintf("flow: Reset with %d active flows", len(n.active)))
	}
	n.settled = n.eng.Now()
	n.nextEv = sim.Handle{}
	n.minDt = math.Inf(1)
	n.stats = Stats{}
	for _, r := range n.resources {
		r.processed = 0
	}
}

// Stats returns the cumulative solver counters.
func (n *Network) Stats() Stats { return n.stats }

// SetCapacity changes r's capacity to the given value (> 0) and recomputes
// the rates of every active flow. In-flight transfers are settled at their
// old rates up to the current instant first, so the change models a
// transient bandwidth event (degradation window, brown-out) exactly from
// "now" onward.
func (n *Network) SetCapacity(r *Resource, capacity float64) {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("flow: resource %q capacity must be positive and finite, got %g", r.name, capacity))
	}
	if capacity == r.capacity { //bbvet:allow float-compare -- no-op guard: restoring the exact saved capacity value skips a needless recompute
		return
	}
	n.settle()
	r.capacity = capacity
	n.recompute()
	n.schedule()
}

// StartFlow begins transferring amount units across path. onDone runs when
// the transfer completes. The returned flow can be cancelled. A flow with an
// empty path and no rate cap completes after just its latency.
func (n *Network) StartFlow(amount float64, path []*Resource, opts Options, onDone func()) *Flow {
	if amount < 0 || math.IsNaN(amount) {
		panic(fmt.Sprintf("flow: invalid amount %g", amount))
	}
	if opts.Latency < 0 || math.IsNaN(opts.Latency) {
		panic(fmt.Sprintf("flow: invalid latency %g", opts.Latency))
	}
	cap := opts.RateCap
	if cap <= 0 {
		cap = math.Inf(1)
	}
	// The path is a set: a flow consumes a resource's share once no matter
	// how often the resource appears in the route description. Paths are
	// almost always duplicate-free already (storage services hand out cached
	// immutable paths), so the common case aliases the caller's slice rather
	// than copying it; callers must not mutate a path while its flow is
	// active. Only a path with repeats (e.g. a copy looping through the same
	// link) pays for a deduplicated copy.
	dedup := path
	if hasDuplicate(path) {
		dedup = dedupPath(path)
	}
	n.stats.FlowsStarted++
	f := &Flow{
		net:       n,
		path:      dedup,
		remaining: amount,
		amount:    amount,
		rateCap:   cap,
		onDone:    onDone,
	}
	if opts.Latency > 0 {
		f.latEv = n.eng.After(opts.Latency, func() {
			f.latEv = sim.Handle{}
			n.activate(f)
		})
	} else {
		n.activate(f)
	}
	return f
}

// hasDuplicate reports whether path mentions any resource twice. Paths are
// 1-6 resources long, so the quadratic scan beats any map or sort.
func hasDuplicate(path []*Resource) bool {
	for i, r := range path {
		for _, d := range path[:i] {
			if d == r {
				return true
			}
		}
	}
	return false
}

// dedupPath returns a copy of path with repeats removed, preserving first
// occurrence order.
func dedupPath(path []*Resource) []*Resource {
	dedup := make([]*Resource, 0, len(path))
	for _, r := range path {
		seen := false
		for _, d := range dedup {
			if d == r {
				seen = true
				break
			}
		}
		if !seen {
			dedup = append(dedup, r)
		}
	}
	return dedup
}

func (n *Network) activate(f *Flow) {
	f.started = n.eng.Now()
	if f.remaining <= 0 || (len(f.path) == 0 && math.IsInf(f.rateCap, 1)) {
		// Instantaneous: account the amount and schedule completion now so
		// callbacks still run from the event loop, never synchronously from
		// StartFlow (callers rely on that for ordering).
		for _, r := range f.path {
			r.processed += f.remaining
		}
		f.remaining = 0
		n.eng.After(0, func() { n.complete(f) })
		return
	}
	n.settle()
	f.active = true
	n.active = append(n.active, f)
	n.recompute()
	n.schedule()
}

// Cancel aborts an in-progress flow without running its callback.
func (f *Flow) Cancel() {
	if f.done {
		return
	}
	n := f.net
	if !f.latEv.Cancelled() {
		n.eng.Cancel(f.latEv)
		f.latEv = sim.Handle{}
		f.done = true
		return
	}
	if !f.active {
		// Instantaneous completion already queued; mark done so complete()
		// skips the callback.
		f.done = true
		return
	}
	n.settle()
	n.remove(f)
	f.done = true
	n.recompute()
	n.schedule()
}

func (n *Network) remove(f *Flow) {
	for i, g := range n.active {
		if g == f {
			n.active = append(n.active[:i], n.active[i+1:]...)
			break
		}
	}
	f.active = false
	f.rate = 0
}

// settle advances every active flow to the current time at its last
// computed rate.
func (n *Network) settle() {
	now := n.eng.Now()
	dt := now - n.settled
	n.settled = now
	if dt <= 0 {
		return
	}
	for _, f := range n.active {
		moved := f.rate * dt
		if moved > f.remaining {
			moved = f.remaining
		}
		f.remaining -= moved
		for _, r := range f.path {
			r.processed += moved
		}
	}
}

// recompute assigns max-min fair rates to all active flows by progressive
// filling over the touched-resource set: repeatedly find the tightest
// constraint (a resource's equal share or a flow's cap), freeze the flows
// it binds, and subtract their usage.
//
// Only resources actually crossed by an active flow participate at all —
// the generation stamp identifies them in one pass over the active paths,
// so idle resources cost nothing — and each flow's projected completion
// delay is folded into minDt the moment its rate freezes, so schedule needs
// no scan of its own. The inner rounds deliberately iterate n.active with a
// frozen-flag check rather than maintaining compacted pointer slices: the
// flag test is branch-cheap, while pointer-slice rebuilding costs a GC
// write barrier per element per round. Every floating-point operation
// happens on the same values in the same order as the original
// full-network recompute, keeping results bit-identical; see DESIGN.md
// "Campaign parallelism & the flow hot path".
func (n *Network) recompute() {
	n.stats.Recomputes++
	n.minDt = math.Inf(1)
	if len(n.active) == 0 {
		return
	}
	// Stamp the touched-resource set. Scratch is reused across recomputes,
	// so the steady state allocates nothing.
	n.gen++
	touched := n.touched[:0]
	unfrozen := 0
	for _, f := range n.active {
		f.frozen = false
		f.rate = 0
		for _, r := range f.path {
			if r.gen != n.gen {
				r.gen = n.gen
				r.avail = r.capacity
				r.count = 0
				touched = append(touched, r)
			}
			r.count++
		}
		unfrozen++
	}
	n.touched = touched
	for unfrozen > 0 {
		n.stats.FreezeRounds++
		// Tightest constraint this round.
		m := math.Inf(1)
		for _, r := range touched {
			if r.count > 0 {
				if share := r.avail / float64(r.count); share < m {
					m = share
				}
			}
		}
		for _, f := range n.active {
			if !f.frozen && f.rateCap < m {
				m = f.rateCap
			}
		}
		if math.IsInf(m, 1) {
			// Remaining flows cross no resources and have no cap; they were
			// handled as instantaneous in activate, so this cannot happen.
			panic("flow: unconstrained flow in recompute")
		}
		// Freeze every flow bound by this constraint: flows whose cap equals
		// the minimum, and flows crossing a resource whose share equals it.
		const tol = 1 + 1e-12
		froze := 0
		for _, f := range n.active {
			if f.frozen {
				continue
			}
			bind := f.rateCap <= m*tol
			if !bind {
				for _, r := range f.path {
					if r.avail/float64(r.count) <= m*tol {
						bind = true
						break
					}
				}
			}
			if bind {
				f.frozen = true
				f.rate = math.Min(m, f.rateCap)
				froze++
				if f.rate > 0 {
					if dt := f.remaining / f.rate; dt < n.minDt {
						n.minDt = dt
					}
				}
			}
		}
		if froze == 0 {
			panic("flow: progressive filling made no progress")
		}
		// Subtract frozen usage; rebuild avail/count on the touched
		// resources for the next round.
		for _, r := range touched {
			r.avail = r.capacity
			r.count = 0
		}
		unfrozen = 0
		for _, f := range n.active {
			if f.frozen {
				for _, r := range f.path {
					r.avail -= f.rate
				}
			} else {
				for _, r := range f.path {
					r.count++
				}
				unfrozen++
			}
		}
		for _, r := range touched {
			if r.avail < 0 {
				if r.avail < -1e-6*r.capacity {
					panic(fmt.Sprintf("flow: resource %q over-allocated by %g", r.name, -r.avail))
				}
				r.avail = 0
			}
		}
	}
}

// schedule (re)arms the single next-completion event. The delay was already
// folded into minDt by the recompute that every call site runs first, so
// this is O(1): no rescan of the active set.
func (n *Network) schedule() {
	n.eng.Cancel(n.nextEv) // stale or zero handles are no-ops
	n.nextEv = sim.Handle{}
	if len(n.active) == 0 {
		return
	}
	dt := n.minDt
	if math.IsInf(dt, 1) {
		panic("flow: active flows but no positive rate")
	}
	if dt < 0 {
		dt = 0
	}
	n.nextEv = n.eng.After(dt, n.completionFn)
}

func (n *Network) onCompletion() {
	n.nextEv = sim.Handle{}
	n.settle()
	// Collect finished flows first: completion callbacks may start new flows
	// and we want a single consistent recompute before any callback runs.
	finished := n.finished[:0]
	for _, f := range n.active {
		if f.remaining <= completionTolerance(f.amount) {
			finished = append(finished, f)
		}
	}
	n.finished = finished
	for _, f := range finished {
		n.remove(f)
	}
	n.recompute()
	n.schedule()
	for _, f := range finished {
		n.complete(f)
	}
}

func (n *Network) complete(f *Flow) {
	if f.done {
		return
	}
	f.done = true
	f.remaining = 0
	if f.onDone != nil {
		f.onDone()
	}
}

func completionTolerance(amount float64) float64 {
	return 1e-9*amount + 1e-9
}

// Utilization returns the fraction of capacity currently allocated on r
// across all active flows. Intended for tests and instrumentation.
func (n *Network) Utilization(r *Resource) float64 {
	used := 0.0
	for _, f := range n.active {
		for _, p := range f.path {
			if p == r {
				used += f.rate
				break
			}
		}
	}
	return used / r.capacity
}
