package flow

import (
	"testing"

	"bbwfsim/internal/sim"
)

// BenchmarkConcurrentFlows measures the progressive-filling recompute cost
// with many flows sharing one bottleneck: each arrival and departure
// triggers a full max-min reallocation.
func BenchmarkConcurrentFlows(b *testing.B) {
	for _, k := range []int{8, 64, 256} {
		k := k
		b.Run(byteCount(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				n := NewNetwork(e)
				link := n.NewResource("link", 1000)
				disk := n.NewResource("disk", 800)
				done := 0
				for j := 0; j < k; j++ {
					// Staggered sizes so completions interleave and force
					// k reallocations.
					n.StartFlow(float64(100+j), []*Resource{link, disk}, Options{}, func() { done++ })
				}
				e.Run()
				if done != k {
					b.Fatalf("completed %d of %d flows", done, k)
				}
			}
		})
	}
}

// BenchmarkFlowChurn measures steady-state arrival/departure churn: a new
// flow starts whenever one finishes, keeping a constant concurrency.
func BenchmarkFlowChurn(b *testing.B) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	link := n.NewResource("link", 1000)
	started := 0
	var launch func()
	launch = func() {
		if started >= b.N {
			return
		}
		started++
		n.StartFlow(50, []*Resource{link}, Options{}, launch)
	}
	for i := 0; i < 16 && i < b.N; i++ {
		launch()
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkSparsePlatform models the shape real campaigns produce: a
// platform with many resources (per-node links and disks, like the 8-node
// 1000Genomes setting) where each flow crosses only a short path and most
// resources are idle at any instant. The touched-set recompute visits only
// crossed resources, so cost tracks active flows, not platform size.
func BenchmarkSparsePlatform(b *testing.B) {
	const nodes = 32
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		n := NewNetwork(e)
		links := make([]*Resource, nodes)
		disks := make([]*Resource, nodes)
		for j := 0; j < nodes; j++ {
			links[j] = n.NewResource("link", 1000)
			disks[j] = n.NewResource("disk", 800)
		}
		done := 0
		// Four concurrent flows per wave, each on its own node pair, with
		// staggered sizes so completions interleave.
		for j := 0; j < 4*nodes; j++ {
			src := j % nodes
			n.StartFlow(float64(100+j), []*Resource{links[src], disks[(src+1)%nodes]}, Options{}, func() { done++ })
		}
		e.Run()
		if done != 4*nodes {
			b.Fatalf("completed %d of %d flows", done, 4*nodes)
		}
	}
}

// TestRecomputeZeroAllocs asserts the hot path's steady state allocates
// nothing: once the Network's scratch slices have grown to fit, recompute
// and schedule reuse them on every subsequent rate change.
func TestRecomputeZeroAllocs(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	link := n.NewResource("link", 1000)
	disk := n.NewResource("disk", 800)
	// Warm up the scratch: a first wave grows touched/finished to capacity.
	for j := 0; j < 8; j++ {
		n.StartFlow(float64(10+j), []*Resource{link, disk}, Options{}, nil)
	}
	e.Run()
	// Steady state: flows already active, measure recompute alone.
	// (schedule is excluded: arming the next-completion event allocates a
	// sim.Event by design; the ISSUE's zero-allocation target is the rate
	// recomputation scratch.)
	for j := 0; j < 8; j++ {
		n.StartFlow(1e12, []*Resource{link, disk}, Options{}, nil)
	}
	allocs := testing.AllocsPerRun(100, func() {
		n.recompute()
	})
	if allocs != 0 {
		t.Fatalf("recompute allocated %.1f times per run; want 0", allocs)
	}
}

func byteCount(k int) string {
	switch k {
	case 8:
		return "flows=8"
	case 64:
		return "flows=64"
	default:
		return "flows=256"
	}
}
