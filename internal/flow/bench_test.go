package flow

import (
	"testing"

	"bbwfsim/internal/sim"
)

// BenchmarkConcurrentFlows measures the progressive-filling recompute cost
// with many flows sharing one bottleneck: each arrival and departure
// triggers a full max-min reallocation.
func BenchmarkConcurrentFlows(b *testing.B) {
	for _, k := range []int{8, 64, 256} {
		k := k
		b.Run(byteCount(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				n := NewNetwork(e)
				link := n.NewResource("link", 1000)
				disk := n.NewResource("disk", 800)
				done := 0
				for j := 0; j < k; j++ {
					// Staggered sizes so completions interleave and force
					// k reallocations.
					n.StartFlow(float64(100+j), []*Resource{link, disk}, Options{}, func() { done++ })
				}
				e.Run()
				if done != k {
					b.Fatalf("completed %d of %d flows", done, k)
				}
			}
		})
	}
}

// BenchmarkFlowChurn measures steady-state arrival/departure churn: a new
// flow starts whenever one finishes, keeping a constant concurrency.
func BenchmarkFlowChurn(b *testing.B) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	link := n.NewResource("link", 1000)
	started := 0
	var launch func()
	launch = func() {
		if started >= b.N {
			return
		}
		started++
		n.StartFlow(50, []*Resource{link}, Options{}, launch)
	}
	for i := 0; i < 16 && i < b.N; i++ {
		launch()
	}
	b.ResetTimer()
	e.Run()
}

func byteCount(k int) string {
	switch k {
	case 8:
		return "flows=8"
	case 64:
		return "flows=64"
	default:
		return "flows=256"
	}
}
