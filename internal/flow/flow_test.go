package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bbwfsim/internal/sim"
)

const eps = 1e-6

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

func TestSingleFlowTime(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100) // 100 units/s
	var done float64 = -1
	n.StartFlow(1000, []*Resource{r}, Options{}, func() { done = e.Now() })
	e.Run()
	if !approx(done, 10, eps) {
		t.Errorf("single flow completed at %v, want 10", done)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	var t1, t2 float64
	n.StartFlow(1000, []*Resource{r}, Options{}, func() { t1 = e.Now() })
	n.StartFlow(1000, []*Resource{r}, Options{}, func() { t2 = e.Now() })
	e.Run()
	// Both at 50 units/s for the full transfer: both finish at 20s.
	if !approx(t1, 20, eps) || !approx(t2, 20, eps) {
		t.Errorf("equal flows completed at %v, %v, want 20, 20", t1, t2)
	}
}

func TestShorterFlowFreesBandwidth(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	var tShort, tLong float64
	n.StartFlow(500, []*Resource{r}, Options{}, func() { tShort = e.Now() })
	n.StartFlow(1500, []*Resource{r}, Options{}, func() { tLong = e.Now() })
	e.Run()
	// Phase 1: both at 50 u/s until the short one finishes at t=10 (500/50).
	// Phase 2: long has 1000 left at 100 u/s → finishes at t=20.
	if !approx(tShort, 10, eps) {
		t.Errorf("short flow completed at %v, want 10", tShort)
	}
	if !approx(tLong, 20, eps) {
		t.Errorf("long flow completed at %v, want 20", tLong)
	}
}

func TestRateCapBinds(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	var tCapped, tFree float64
	n.StartFlow(300, []*Resource{r}, Options{RateCap: 30}, func() { tCapped = e.Now() })
	n.StartFlow(700, []*Resource{r}, Options{}, func() { tFree = e.Now() })
	e.Run()
	// Capped runs at 30; free gets the remaining 70. Both end at t=10.
	if !approx(tCapped, 10, eps) || !approx(tFree, 10, eps) {
		t.Errorf("completion times %v, %v; want 10, 10", tCapped, tFree)
	}
}

func TestCapBelowFairShareAlone(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 1000)
	var done float64
	n.StartFlow(100, []*Resource{r}, Options{RateCap: 10}, func() { done = e.Now() })
	e.Run()
	if !approx(done, 10, eps) {
		t.Errorf("capped lone flow completed at %v, want 10", done)
	}
}

func TestSerialPathBottleneck(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	net := n.NewResource("net", 800)
	disk := n.NewResource("disk", 100)
	var done float64
	n.StartFlow(1000, []*Resource{net, disk}, Options{}, func() { done = e.Now() })
	e.Run()
	if !approx(done, 10, eps) {
		t.Errorf("serial path flow completed at %v, want 10 (disk bound)", done)
	}
}

func TestCrossTrafficOnSharedLink(t *testing.T) {
	// Two flows: A uses link1+shared, B uses shared only.
	// shared=100, link1=30. A is bottlenecked by link1 at 30,
	// B picks up the slack: 70.
	e := sim.NewEngine()
	n := NewNetwork(e)
	link1 := n.NewResource("link1", 30)
	shared := n.NewResource("shared", 100)
	var tA, tB float64
	n.StartFlow(300, []*Resource{link1, shared}, Options{}, func() { tA = e.Now() })
	n.StartFlow(700, []*Resource{shared}, Options{}, func() { tB = e.Now() })
	e.Run()
	if !approx(tA, 10, eps) || !approx(tB, 10, eps) {
		t.Errorf("completion times %v, %v; want 10, 10", tA, tB)
	}
}

func TestLatencyDelaysStart(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	var done float64
	n.StartFlow(1000, []*Resource{r}, Options{Latency: 5}, func() { done = e.Now() })
	e.Run()
	if !approx(done, 15, eps) {
		t.Errorf("latency flow completed at %v, want 15", done)
	}
}

func TestZeroAmountCompletesAfterLatency(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	var done float64 = -1
	n.StartFlow(0, nil, Options{Latency: 2}, func() { done = e.Now() })
	e.Run()
	if !approx(done, 2, eps) {
		t.Errorf("zero-amount flow completed at %v, want 2", done)
	}
}

func TestCallbackNeverSynchronous(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	sync := true
	n.StartFlow(0, nil, Options{}, func() { _ = sync })
	returned := false
	n.StartFlow(0, nil, Options{}, func() {
		if !returned {
			t.Error("callback ran synchronously from StartFlow")
		}
	})
	returned = true
	e.Run()
}

func TestCancelSpeedsUpRemaining(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	cancelled := n.StartFlow(10000, []*Resource{r}, Options{}, func() {
		t.Error("cancelled flow's callback ran")
	})
	var done float64
	n.StartFlow(1000, []*Resource{r}, Options{}, func() { done = e.Now() })
	e.After(5, func() { cancelled.Cancel() })
	e.Run()
	// 0-5s at 50 u/s (250 done), then 750 left at 100 u/s → 5+7.5 = 12.5.
	if !approx(done, 12.5, eps) {
		t.Errorf("survivor completed at %v, want 12.5", done)
	}
	if !cancelled.Done() {
		t.Error("cancelled flow not marked done")
	}
}

func TestCancelDuringLatency(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	f := n.StartFlow(1000, []*Resource{r}, Options{Latency: 10}, func() {
		t.Error("cancelled latent flow's callback ran")
	})
	e.After(1, func() { f.Cancel() })
	e.Run()
	if n.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows() = %d, want 0", n.ActiveFlows())
	}
}

func TestProcessedAccounting(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	n.StartFlow(300, []*Resource{r}, Options{}, nil)
	n.StartFlow(700, []*Resource{r}, Options{}, nil)
	e.Run()
	if !approx(r.Processed(), 1000, 1e-6) {
		t.Errorf("Processed() = %v, want 1000", r.Processed())
	}
}

func TestNewResourceValidation(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewResource with capacity %v did not panic", c)
				}
			}()
			n.NewResource("bad", c)
		}()
	}
}

func TestManyFlowsFairShare(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 320)
	const k = 32
	var finish [k]float64
	for i := 0; i < k; i++ {
		i := i
		n.StartFlow(100, []*Resource{r}, Options{}, func() { finish[i] = e.Now() })
	}
	e.Run()
	// Each gets 10 u/s → all finish at t=10.
	for i, f := range finish {
		if !approx(f, 10, eps) {
			t.Errorf("flow %d finished at %v, want 10", i, f)
		}
	}
}

// randomScenario builds a random set of resources and flows, runs to
// completion, and returns observables for property checks.
type scenarioResult struct {
	overCapacity  bool
	allCompleted  bool
	conservation  bool
	finishedOrder []float64
}

func runRandomScenario(seed int64) scenarioResult {
	rng := rand.New(rand.NewSource(seed))
	e := sim.NewEngine()
	n := NewNetwork(e)
	nRes := 1 + rng.Intn(5)
	resources := make([]*Resource, nRes)
	for i := range resources {
		resources[i] = n.NewResource("r", 10+rng.Float64()*1000)
	}
	nFlows := 1 + rng.Intn(20)
	completed := 0
	var res scenarioResult
	totalPerResource := make(map[*Resource]float64)
	for i := 0; i < nFlows; i++ {
		// Random subset path (non-empty).
		var path []*Resource
		for _, r := range resources {
			if rng.Intn(2) == 0 {
				path = append(path, r)
			}
		}
		if len(path) == 0 {
			path = append(path, resources[rng.Intn(nRes)])
		}
		amount := 1 + rng.Float64()*10000
		opts := Options{}
		if rng.Intn(3) == 0 {
			opts.RateCap = 1 + rng.Float64()*500
		}
		if rng.Intn(4) == 0 {
			opts.Latency = rng.Float64() * 5
		}
		for _, r := range path {
			totalPerResource[r] += amount
		}
		n.StartFlow(amount, path, opts, func() {
			completed++
			res.finishedOrder = append(res.finishedOrder, e.Now())
			// Invariant: at any completion, no resource is over capacity.
			for _, r := range resources {
				if n.Utilization(r) > 1+1e-9 {
					res.overCapacity = true
				}
			}
		})
	}
	e.Run()
	res.allCompleted = completed == nFlows
	res.conservation = true
	for r, want := range totalPerResource {
		if !approx(r.Processed(), want, 1e-6) {
			res.conservation = false
		}
	}
	return res
}

// Property: no resource is ever allocated beyond capacity, every flow
// completes, and each resource carries exactly the bytes of the flows that
// crossed it.
func TestRandomScenarioInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := runRandomScenario(seed)
		return !r.overCapacity && r.allCompleted && r.conservation
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the fluid model is deterministic.
func TestScenarioDeterminismQuick(t *testing.T) {
	f := func(seed int64) bool {
		a := runRandomScenario(seed)
		b := runRandomScenario(seed)
		if len(a.finishedOrder) != len(b.finishedOrder) {
			return false
		}
		for i := range a.finishedOrder {
			if a.finishedOrder[i] != b.finishedOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: max-min fairness — for every active flow, either its cap binds
// or at least one resource on its path is (nearly) fully utilized.
func TestMaxMinBottleneckProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := sim.NewEngine()
		n := NewNetwork(e)
		nRes := 1 + rng.Intn(4)
		resources := make([]*Resource, nRes)
		for i := range resources {
			resources[i] = n.NewResource("r", 10+rng.Float64()*100)
		}
		var flows []*Flow
		nFlows := 1 + rng.Intn(10)
		for i := 0; i < nFlows; i++ {
			path := []*Resource{resources[rng.Intn(nRes)]}
			if nRes > 1 && rng.Intn(2) == 0 {
				path = append(path, resources[rng.Intn(nRes)])
			}
			opts := Options{}
			if rng.Intn(3) == 0 {
				opts.RateCap = 1 + rng.Float64()*50
			}
			flows = append(flows, n.StartFlow(1e12, path, opts, nil))
		}
		// Inspect the allocation mid-flight.
		ok := true
		e.At(1e-9, func() {
			for _, f := range flows {
				if f.Rate() <= 0 {
					ok = false
					continue
				}
				if f.Rate() >= f.rateCap*(1-1e-9) {
					continue // cap binds
				}
				bottleneck := false
				for _, r := range f.path {
					if n.Utilization(r) >= 1-1e-6 {
						bottleneck = true
						break
					}
				}
				if !bottleneck {
					ok = false
				}
			}
			e.Stop()
		})
		e.RunUntil(1)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationReporting(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 100)
	n.StartFlow(1e6, []*Resource{r}, Options{RateCap: 25}, nil)
	e.At(0.001, func() {
		if u := n.Utilization(r); !approx(u, 0.25, 1e-9) {
			t.Errorf("Utilization = %v, want 0.25", u)
		}
		e.Stop()
	})
	e.Run()
}
