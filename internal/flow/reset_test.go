package flow

import (
	"testing"

	"bbwfsim/internal/sim"
)

// runScenario drives a small contention scenario to completion and returns
// the completion times, in start order.
func runScenario(e *sim.Engine, n *Network, a, b *Resource) [3]float64 {
	var times [3]float64
	n.StartFlow(1000, []*Resource{a}, Options{}, func() { times[0] = e.Now() })
	n.StartFlow(1000, []*Resource{a, b}, Options{Latency: 0.5}, func() { times[1] = e.Now() })
	n.StartFlow(500, []*Resource{b}, Options{RateCap: 40}, func() { times[2] = e.Now() })
	e.Run()
	return times
}

// TestNetworkResetReuse: after Engine.Reset + Network.Reset, the same
// engine and network replay a scenario to bit-identical completion times,
// with the per-resource accounting starting over from zero.
func TestNetworkResetReuse(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	a := n.NewResource("a", 100)
	b := n.NewResource("b", 80)

	first := runScenario(e, n, a, b)
	procA, procB := a.Processed(), b.Processed()
	if n.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active after drain", n.ActiveFlows())
	}

	e.Reset()
	n.Reset()
	if got := a.Processed(); got != 0 {
		t.Fatalf("a.Processed() = %v after Reset, want 0", got)
	}
	if st := n.Stats(); st.Recomputes != 0 || st.FlowsStarted != 0 {
		t.Fatalf("stats not cleared: %+v", st)
	}

	second := runScenario(e, n, a, b)
	if first != second {
		t.Fatalf("replay diverged: first %v, second %v", first, second)
	}
	if a.Processed() != procA || b.Processed() != procB {
		t.Fatalf("processed totals diverged: (%v,%v) vs (%v,%v)", a.Processed(), b.Processed(), procA, procB)
	}
}

// TestResetWithActiveFlowsPanics pins the guard: a reset under live flows
// would corrupt the solver's accounting, so it must refuse loudly.
func TestResetWithActiveFlowsPanics(t *testing.T) {
	e := sim.NewEngine()
	n := NewNetwork(e)
	r := n.NewResource("link", 10)
	n.StartFlow(1000, []*Resource{r}, Options{}, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("Reset with an active flow did not panic")
		}
	}()
	n.Reset()
}
