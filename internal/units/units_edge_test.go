package units

import (
	"math"
	"testing"
)

// TestParseRejectsNonFinite: NaN and ±Inf parse as valid floats, but a
// quantity built from them would poison every downstream computation, so
// all three parsers must reject them (with or without a unit suffix).
func TestParseRejectsNonFinite(t *testing.T) {
	malformed := []string{"NaN", "nan", "+Inf", "-Inf", "Inf", "NaN MiB", "InfGB", "NaN MB/s", "Inf GFlop/s"}
	for _, in := range malformed {
		if v, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) = %g, want error", in, float64(v))
		}
		if v, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q) = %g, want error", in, float64(v))
		}
		if v, err := ParseFlopRate(in); err == nil {
			t.Errorf("ParseFlopRate(%q) = %g, want error", in, float64(v))
		}
	}
}

// TestParseMalformedQuantities sweeps shared malformed inputs across all
// three parsers.
func TestParseMalformedQuantities(t *testing.T) {
	for _, in := range []string{"", "  ", "1.2.3", "12 XiB", "0x10MiB", "1e", "--1", "1..5GB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q) succeeded, want error", in)
		}
		if _, err := ParseFlopRate(in); err == nil {
			t.Errorf("ParseFlopRate(%q) succeeded, want error", in)
		}
	}
}

// TestZeroQuantities: zero is a valid size everywhere (zero-size files are
// legal workflow data) and must parse, format, and divide cleanly.
func TestZeroQuantities(t *testing.T) {
	for _, in := range []string{"0", "0B", "0.0 MiB", " 0 GB "} {
		v, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if v != 0 {
			t.Errorf("ParseBytes(%q) = %v, want 0", in, v)
		}
	}
	if got := Bytes(0).String(); got != "0 B" {
		t.Errorf("Bytes(0).String() = %q", got)
	}
	if got := Bytes(0).Seconds(100 * MBps); got != 0 {
		t.Errorf("zero bytes transfer in %g s, want 0", got)
	}
	// Zero bytes over zero bandwidth is still "never completes".
	if got := Bytes(0).Seconds(0); !math.IsInf(got, 1) {
		t.Errorf("0 B at 0 B/s = %g, want +Inf", got)
	}
}
