// Package units provides the physical quantities used throughout the
// simulator: data sizes in bytes, bandwidths in bytes per second, compute
// work in floating-point operations, and compute speed in flops per second.
//
// All quantities are plain float64 wrappers so arithmetic stays cheap and the
// types document intent at API boundaries. Simulated time is a float64
// number of seconds everywhere in this module (the discrete-event kernel in
// internal/sim defines the clock).
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bytes is a data size. Negative sizes are invalid everywhere.
type Bytes float64

// Common data-size units. Binary (power-of-two) prefixes are used for the
// *iB constants, decimal prefixes for KB/MB/GB/TB, matching the mixture the
// paper uses (file sizes in MiB, bandwidths in MB/s and GB/s).
const (
	B   Bytes = 1
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
	TiB Bytes = 1 << 40

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9
	TB Bytes = 1e12
)

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Common bandwidth units (decimal, as vendors and the paper's Table I use).
const (
	Bps  Bandwidth = 1
	KBps Bandwidth = 1e3
	MBps Bandwidth = 1e6
	GBps Bandwidth = 1e9
)

// Flops is an amount of compute work in floating-point operations.
type Flops float64

// FlopRate is a compute speed in floating-point operations per second.
type FlopRate float64

// Common compute-speed units.
const (
	FlopPerSec  FlopRate = 1
	MFlopPerSec FlopRate = 1e6
	GFlopPerSec FlopRate = 1e9
	TFlopPerSec FlopRate = 1e12
)

// Seconds converts a size and a rate to a transfer duration in seconds.
// A non-positive rate yields +Inf, which the flow model treats as "never
// completes" and surfaces as an error at a higher level.
func (b Bytes) Seconds(rate Bandwidth) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return float64(b) / float64(rate)
}

// Seconds converts compute work and a speed to a duration in seconds.
func (f Flops) Seconds(rate FlopRate) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return float64(f) / float64(rate)
}

// Times scales a size by a dimensionless factor.
func (b Bytes) Times(x float64) Bytes { return Bytes(float64(b) * x) }

// String formats a size with a binary prefix, e.g. "32.0 MiB".
func (b Bytes) String() string {
	v := float64(b)
	abs := math.Abs(v)
	switch {
	case abs >= float64(TiB):
		return fmt.Sprintf("%.2f TiB", v/float64(TiB))
	case abs >= float64(GiB):
		return fmt.Sprintf("%.2f GiB", v/float64(GiB))
	case abs >= float64(MiB):
		return fmt.Sprintf("%.2f MiB", v/float64(MiB))
	case abs >= float64(KiB):
		return fmt.Sprintf("%.2f KiB", v/float64(KiB))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

// String formats a bandwidth with a decimal prefix, e.g. "800.0 MB/s".
func (bw Bandwidth) String() string {
	v := float64(bw)
	abs := math.Abs(v)
	switch {
	case abs >= float64(GBps):
		return fmt.Sprintf("%.2f GB/s", v/float64(GBps))
	case abs >= float64(MBps):
		return fmt.Sprintf("%.2f MB/s", v/float64(MBps))
	case abs >= float64(KBps):
		return fmt.Sprintf("%.2f KB/s", v/float64(KBps))
	default:
		return fmt.Sprintf("%.0f B/s", v)
	}
}

// String formats compute work, e.g. "11.30 TFlop".
func (f Flops) String() string {
	v := float64(f)
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.2f TFlop", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2f GFlop", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2f MFlop", v/1e6)
	default:
		return fmt.Sprintf("%.0f Flop", v)
	}
}

// String formats a compute speed, e.g. "36.80 GFlop/s".
func (r FlopRate) String() string {
	v := float64(r)
	abs := math.Abs(v)
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.2f TFlop/s", v/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.2f GFlop/s", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.2f MFlop/s", v/1e6)
	default:
		return fmt.Sprintf("%.0f Flop/s", v)
	}
}

// parseScalar parses the numeric part of a quantity. NaN, ±Inf, and
// negative values are rejected here so malformed strings cannot leak
// non-finite sizes, bandwidths, or rates into the simulation.
func parseScalar(num, orig, what string) (float64, error) {
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %s %q: %v", what, orig, err)
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("units: %s %q must be non-negative and finite", what, orig)
	}
	return v, nil
}

var sizeSuffixes = []struct {
	suffix string
	unit   Bytes
}{
	{"TiB", TiB}, {"GiB", GiB}, {"MiB", MiB}, {"KiB", KiB},
	{"TB", TB}, {"GB", GB}, {"MB", MB}, {"KB", KB}, {"B", B},
}

// ParseBytes parses strings like "32MiB", "1.5 GB", "1024", "512 B".
// A bare number is bytes.
func ParseBytes(s string) (Bytes, error) {
	t := strings.TrimSpace(s)
	for _, su := range sizeSuffixes {
		if strings.HasSuffix(t, su.suffix) {
			v, err := parseScalar(strings.TrimSpace(strings.TrimSuffix(t, su.suffix)), s, "size")
			if err != nil {
				return 0, err
			}
			return Bytes(v) * su.unit, nil
		}
	}
	v, err := parseScalar(t, s, "size")
	if err != nil {
		return 0, err
	}
	return Bytes(v), nil
}

var bwSuffixes = []struct {
	suffix string
	unit   Bandwidth
}{
	{"GB/s", GBps}, {"MB/s", MBps}, {"KB/s", KBps}, {"B/s", Bps},
	{"GBps", GBps}, {"MBps", MBps}, {"KBps", KBps}, {"Bps", Bps},
}

// ParseBandwidth parses strings like "800MB/s", "6.5 GB/s", "950 MBps".
// A bare number is bytes per second.
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	for _, su := range bwSuffixes {
		if strings.HasSuffix(t, su.suffix) {
			v, err := parseScalar(strings.TrimSpace(strings.TrimSuffix(t, su.suffix)), s, "bandwidth")
			if err != nil {
				return 0, err
			}
			return Bandwidth(v) * su.unit, nil
		}
	}
	v, err := parseScalar(t, s, "bandwidth")
	if err != nil {
		return 0, err
	}
	return Bandwidth(v), nil
}

// ParseFlopRate parses strings like "36.8 GFlop/s", "49.12GF/s", "1e9".
func ParseFlopRate(s string) (FlopRate, error) {
	t := strings.TrimSpace(s)
	suffixes := []struct {
		suffix string
		unit   FlopRate
	}{
		{"TFlop/s", TFlopPerSec}, {"GFlop/s", GFlopPerSec}, {"MFlop/s", MFlopPerSec},
		{"TF/s", TFlopPerSec}, {"GF/s", GFlopPerSec}, {"MF/s", MFlopPerSec},
		{"Flop/s", FlopPerSec},
	}
	for _, su := range suffixes {
		if strings.HasSuffix(t, su.suffix) {
			v, err := parseScalar(strings.TrimSpace(strings.TrimSuffix(t, su.suffix)), s, "flop rate")
			if err != nil {
				return 0, err
			}
			return FlopRate(v) * su.unit, nil
		}
	}
	v, err := parseScalar(t, s, "flop rate")
	if err != nil {
		return 0, err
	}
	return FlopRate(v), nil
}
