package units

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestByteConstants(t *testing.T) {
	if MiB != 1048576 {
		t.Errorf("MiB = %v, want 1048576", float64(MiB))
	}
	if GiB != 1024*MiB {
		t.Errorf("GiB = %v, want 1024 MiB", float64(GiB))
	}
	if MB != 1e6 || GB != 1e9 {
		t.Errorf("decimal constants wrong: MB=%v GB=%v", float64(MB), float64(GB))
	}
}

func TestBytesSeconds(t *testing.T) {
	tests := []struct {
		size Bytes
		rate Bandwidth
		want float64
	}{
		{100 * MB, 100 * MBps, 1.0},
		{32 * MiB, 800 * MBps, float64(32*MiB) / 800e6},
		{0, 1 * GBps, 0},
		{1 * GB, 6.5 * GBps, 1e9 / 6.5e9},
	}
	for _, tt := range tests {
		got := tt.size.Seconds(tt.rate)
		if math.Abs(got-tt.want) > 1e-12*math.Max(1, tt.want) {
			t.Errorf("(%v).Seconds(%v) = %v, want %v", tt.size, tt.rate, got, tt.want)
		}
	}
}

func TestBytesSecondsZeroRate(t *testing.T) {
	if got := (1 * MB).Seconds(0); !math.IsInf(got, 1) {
		t.Errorf("Seconds(0) = %v, want +Inf", got)
	}
	if got := (1 * MB).Seconds(-5); !math.IsInf(got, 1) {
		t.Errorf("Seconds(-5) = %v, want +Inf", got)
	}
}

func TestFlopsSeconds(t *testing.T) {
	work := Flops(36.8e9 * 10) // 10 seconds at one Cori core
	if got := work.Seconds(36.8 * GFlopPerSec); math.Abs(got-10) > 1e-9 {
		t.Errorf("Seconds = %v, want 10", got)
	}
	if got := work.Seconds(0); !math.IsInf(got, 1) {
		t.Errorf("Seconds(0) = %v, want +Inf", got)
	}
}

func TestParseBytes(t *testing.T) {
	tests := []struct {
		in   string
		want Bytes
	}{
		{"32MiB", 32 * MiB},
		{"16 MiB", 16 * MiB},
		{"1.5 GB", 1.5 * GB},
		{"1024", 1024},
		{"512 B", 512},
		{"2TiB", 2 * TiB},
		{"67GB", 67 * GB},
		{"3KB", 3 * KB},
	}
	for _, tt := range tests {
		got, err := ParseBytes(tt.in)
		if err != nil {
			t.Errorf("ParseBytes(%q) error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseBytes(%q) = %v, want %v", tt.in, float64(got), float64(tt.want))
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "12XiB", "-5MB", "--3", "MiB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) succeeded, want error", in)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	tests := []struct {
		in   string
		want Bandwidth
	}{
		{"800MB/s", 800 * MBps},
		{"6.5 GB/s", 6.5 * GBps},
		{"950 MBps", 950 * MBps},
		{"100MB/s", 100 * MBps},
		{"42", 42},
	}
	for _, tt := range tests {
		got, err := ParseBandwidth(tt.in)
		if err != nil {
			t.Errorf("ParseBandwidth(%q) error: %v", tt.in, err)
			continue
		}
		if math.Abs(float64(got-tt.want)) > 1e-9 {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", tt.in, float64(got), float64(tt.want))
		}
	}
}

func TestParseBandwidthErrors(t *testing.T) {
	for _, in := range []string{"", "fast", "-1GB/s", "GB/s"} {
		if _, err := ParseBandwidth(in); err == nil {
			t.Errorf("ParseBandwidth(%q) succeeded, want error", in)
		}
	}
}

func TestParseFlopRate(t *testing.T) {
	tests := []struct {
		in   string
		want FlopRate
	}{
		{"36.8 GFlop/s", 36.8 * GFlopPerSec},
		{"49.12GFlop/s", 49.12 * GFlopPerSec},
		{"2 TF/s", 2 * TFlopPerSec},
		{"1e9", 1e9},
	}
	for _, tt := range tests {
		got, err := ParseFlopRate(tt.in)
		if err != nil {
			t.Errorf("ParseFlopRate(%q) error: %v", tt.in, err)
			continue
		}
		if math.Abs(float64(got-tt.want)) > 1e-3 {
			t.Errorf("ParseFlopRate(%q) = %v, want %v", tt.in, float64(got), float64(tt.want))
		}
	}
	if _, err := ParseFlopRate("quick"); err == nil {
		t.Error("ParseFlopRate(quick) succeeded, want error")
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{(32 * MiB).String(), "32.00 MiB"},
		{(800 * MBps).String(), "800.00 MB/s"},
		{(6.5 * GBps).String(), "6.50 GB/s"},
		{Flops(11.3e12).String(), "11.30 TFlop"},
		{(36.8 * GFlopPerSec).String(), "36.80 GFlop/s"},
		{Bytes(100).String(), "100 B"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

// Property: formatting a parsed value and re-parsing it loses at most
// rounding precision, and parsing is scale-consistent.
func TestParseBytesScalesQuick(t *testing.T) {
	f := func(raw uint32) bool {
		v := float64(raw%100000) / 7.0
		mib, err1 := ParseBytes(formatFloat(v) + "MiB")
		b, err2 := ParseBytes(formatFloat(v * float64(MiB)))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(float64(mib-b)) <= 1e-6*math.Max(1, float64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

func TestStringAllScales(t *testing.T) {
	cases := []struct{ got, want string }{
		{(2 * TiB).String(), "2.00 TiB"},
		{(3 * GiB).String(), "3.00 GiB"},
		{(5 * KiB).String(), "5.00 KiB"},
		{(7 * KBps).String(), "7.00 KB/s"},
		{Bandwidth(12).String(), "12 B/s"},
		{Flops(2e12).String(), "2.00 TFlop"},
		{Flops(5e6).String(), "5.00 MFlop"},
		{Flops(12).String(), "12 Flop"},
		{FlopRate(3e12).String(), "3.00 TFlop/s"},
		{FlopRate(2e6).String(), "2.00 MFlop/s"},
		{FlopRate(9).String(), "9 Flop/s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestParseBytesAllSuffixes(t *testing.T) {
	cases := map[string]Bytes{
		"1TiB": TiB, "1KiB": KiB, "2TB": 2 * TB, "3GB": 3 * GB,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil || got != want {
			t.Errorf("ParseBytes(%q) = %v, %v; want %v", in, float64(got), err, float64(want))
		}
	}
}

func TestTimesScaling(t *testing.T) {
	if (100 * MB).Times(0.3) != 30*MB {
		t.Error("Times scaling wrong")
	}
}

func TestParseFlopRateMoreSuffixes(t *testing.T) {
	cases := map[string]FlopRate{
		"5 MFlop/s": 5 * MFlopPerSec,
		"2GF/s":     2 * GFlopPerSec,
		"1 MF/s":    1 * MFlopPerSec,
		"4 Flop/s":  4,
	}
	for in, want := range cases {
		got, err := ParseFlopRate(in)
		if err != nil || got != want {
			t.Errorf("ParseFlopRate(%q) = %v, %v; want %v", in, float64(got), err, float64(want))
		}
	}
	if _, err := ParseFlopRate("-3 GF/s"); err == nil {
		t.Error("negative flop rate accepted")
	}
}
