// Package workloads generates synthetic workflow structures — chains,
// fork-joins, reduction trees, broadcasts, and random layered DAGs — in
// configurable file regimes (many small files vs. few large files).
//
// The paper motivates exactly this axis: "some tasks may generate small
// numbers of very large files, while others may generate large numbers of
// very small files. Such analysis may unveil limitations of current BB
// solutions" (Section I), and its striped-mode findings hinge on the 1:N
// versus N:1 access-pattern distinction. These generators let the
// experiments sweep structure and file regime orthogonally.
package workloads

import (
	"fmt"
	"math/rand"

	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// FileRegime describes how much data an edge carries and in how many
// pieces.
type FileRegime struct {
	// Count is the number of files per producer→consumer edge.
	Count int
	// Size is each file's size.
	Size units.Bytes
}

// The two regimes the paper contrasts: the same 256 MiB per edge, split
// into 64 small files or a single large one.
var (
	ManySmall = FileRegime{Count: 64, Size: 4 * units.MiB}
	FewLarge  = FileRegime{Count: 1, Size: 256 * units.MiB}
)

// Bytes returns the regime's per-edge volume.
func (r FileRegime) Bytes() units.Bytes { return units.Bytes(r.Count) * r.Size }

// Params configures task properties shared by all patterns.
type Params struct {
	// Work is each task's sequential compute work (default 60 s at Cori
	// core speed).
	Work units.Flops
	// Cores is each task's core request (default 1).
	Cores int
	// LambdaIO annotates tasks for calibration (default 0.2).
	LambdaIO float64
	// Regime is the per-edge file regime (default FewLarge).
	Regime FileRegime
}

func (p *Params) withDefaults() Params {
	q := *p
	if q.Work == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.Work = units.Flops(60 * 36.80e9)
	}
	if q.Cores == 0 {
		q.Cores = 1
	}
	if q.LambdaIO == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.LambdaIO = 0.2
	}
	if q.Regime.Count == 0 {
		q.Regime = FewLarge
	}
	return q
}

// builder accumulates a pattern.
type builder struct {
	w   *workflow.Workflow
	p   Params
	seq int
}

func newBuilder(name string, p Params) *builder {
	return &builder{w: workflow.New(name), p: p.withDefaults()}
}

// edge creates the regime's files for a producer→consumer edge and returns
// their IDs.
func (b *builder) edge(label string) []string {
	ids := make([]string, 0, b.p.Regime.Count)
	for i := 0; i < b.p.Regime.Count; i++ {
		id := fmt.Sprintf("%s_f%03d", label, i)
		b.w.MustAddFile(id, b.p.Regime.Size)
		ids = append(ids, id)
	}
	return ids
}

func (b *builder) task(id, name string, inputs, outputs []string) {
	b.w.MustAddTask(workflow.TaskSpec{
		ID: id, Name: name,
		Work: b.p.Work, Cores: b.p.Cores, LambdaIO: b.p.LambdaIO,
		Inputs: inputs, Outputs: outputs,
	})
}

// Chain builds a linear pipeline of n tasks, each feeding the next through
// one edge of files (the paper's SWarp pipeline shape).
func Chain(n int, p Params) (*workflow.Workflow, error) {
	if n < 1 {
		return nil, fmt.Errorf("workloads: chain length %d", n)
	}
	b := newBuilder(fmt.Sprintf("chain-%d", n), p)
	var prev []string
	for i := 0; i < n; i++ {
		var out []string
		if i < n-1 {
			out = b.edge(fmt.Sprintf("e%03d", i))
		}
		b.task(fmt.Sprintf("t%03d", i), "stage", prev, out)
		prev = out
	}
	return b.w, nil
}

// ForkJoin builds source → width parallel workers → sink: the 1:N then N:1
// pattern in one workflow.
func ForkJoin(width int, p Params) (*workflow.Workflow, error) {
	if width < 1 {
		return nil, fmt.Errorf("workloads: fork-join width %d", width)
	}
	b := newBuilder(fmt.Sprintf("forkjoin-%d", width), p)
	var sourceOuts, sinkIns []string
	branchIn := make([][]string, width)
	branchOut := make([][]string, width)
	for i := 0; i < width; i++ {
		branchIn[i] = b.edge(fmt.Sprintf("fork%03d", i))
		sourceOuts = append(sourceOuts, branchIn[i]...)
	}
	b.task("source", "source", nil, sourceOuts)
	for i := 0; i < width; i++ {
		branchOut[i] = b.edge(fmt.Sprintf("join%03d", i))
		sinkIns = append(sinkIns, branchOut[i]...)
		b.task(fmt.Sprintf("worker%03d", i), "worker", branchIn[i], branchOut[i])
	}
	b.task("sink", "sink", sinkIns, nil)
	return b.w, nil
}

// ReduceTree builds a binary in-tree: `leaves` source tasks reduced
// pairwise to a single root (the N:1 aggregation pattern).
func ReduceTree(leaves int, p Params) (*workflow.Workflow, error) {
	if leaves < 2 {
		return nil, fmt.Errorf("workloads: reduce tree needs ≥2 leaves, got %d", leaves)
	}
	b := newBuilder(fmt.Sprintf("reduce-%d", leaves), p)
	level := make([][]string, 0, leaves)
	for i := 0; i < leaves; i++ {
		out := b.edge(fmt.Sprintf("leaf%03d", i))
		b.task(fmt.Sprintf("leaf%03d", i), "leaf", nil, out)
		level = append(level, out)
	}
	round := 0
	for len(level) > 1 {
		var next [][]string
		for i := 0; i+1 < len(level); i += 2 {
			var in []string
			in = append(in, level[i]...)
			in = append(in, level[i+1]...)
			var out []string
			if len(level) > 2 {
				out = b.edge(fmt.Sprintf("r%d_%03d", round, i/2))
			}
			b.task(fmt.Sprintf("reduce%d_%03d", round, i/2), "reduce", in, out)
			if out != nil {
				next = append(next, out)
			}
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		round++
	}
	return b.w, nil
}

// Broadcast builds one producer whose single edge is read by `width`
// consumers — the shared-file N:1 access pattern striped burst buffers are
// optimized for.
func Broadcast(width int, p Params) (*workflow.Workflow, error) {
	if width < 1 {
		return nil, fmt.Errorf("workloads: broadcast width %d", width)
	}
	b := newBuilder(fmt.Sprintf("broadcast-%d", width), p)
	shared := b.edge("shared")
	b.task("producer", "producer", nil, shared)
	for i := 0; i < width; i++ {
		b.task(fmt.Sprintf("reader%03d", i), "reader", shared, nil)
	}
	return b.w, nil
}

// RandomLayered builds a seeded random layered DAG: `layers` levels of
// `width` tasks, where each non-source task consumes the edges of a random
// subset of the previous layer (acyclic by construction).
func RandomLayered(seed int64, layers, width int, density float64, p Params) (*workflow.Workflow, error) {
	if layers < 1 || width < 1 {
		return nil, fmt.Errorf("workloads: layered %d×%d", layers, width)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("workloads: density %g outside [0,1]", density)
	}
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(fmt.Sprintf("layered-%dx%d", layers, width), p)
	prevOut := make([][]string, 0, width)
	for l := 0; l < layers; l++ {
		curOut := make([][]string, 0, width)
		for i := 0; i < width; i++ {
			var in []string
			if l > 0 {
				picked := false
				for j, outs := range prevOut {
					if rng.Float64() < density {
						in = append(in, outs...)
						picked = true
						_ = j
					}
				}
				if !picked { // keep the graph connected
					in = append(in, prevOut[rng.Intn(len(prevOut))]...)
				}
			}
			var out []string
			if l < layers-1 {
				out = b.edge(fmt.Sprintf("l%02d_%03d", l, i))
			}
			b.task(fmt.Sprintf("t%02d_%03d", l, i), fmt.Sprintf("layer%02d", l), in, out)
			curOut = append(curOut, out)
		}
		prevOut = curOut
	}
	return b.w, nil
}

// Patterns returns the named pattern catalog used by the structure
// experiment, each instantiated at a comparable scale.
func Patterns(p Params) (map[string]*workflow.Workflow, error) {
	out := map[string]*workflow.Workflow{}
	add := func(name string, w *workflow.Workflow, err error) error {
		if err != nil {
			return err
		}
		out[name] = w
		return nil
	}
	chain, err := Chain(8, p)
	if err := add("chain", chain, err); err != nil {
		return nil, err
	}
	fj, err := ForkJoin(16, p)
	if err := add("fork-join", fj, err); err != nil {
		return nil, err
	}
	rt, err := ReduceTree(16, p)
	if err := add("reduce-tree", rt, err); err != nil {
		return nil, err
	}
	bc, err := Broadcast(16, p)
	if err := add("broadcast", bc, err); err != nil {
		return nil, err
	}
	rl, err := RandomLayered(42, 4, 8, 0.3, p)
	if err := add("random-layered", rl, err); err != nil {
		return nil, err
	}
	return out, nil
}
