package workloads

import (
	"testing"

	"bbwfsim/internal/workflow"
)

func TestScaleExactTaskCounts(t *testing.T) {
	for _, topo := range []string{"chain", "forkjoin", "montage"} {
		for _, n := range []int{1, 2, 3, 5, 7, 100, 1000, 2049} {
			wf, err := Scale(ScaleSpec{Topology: topo, Tasks: n, Width: 16})
			if err != nil {
				t.Fatalf("Scale(%s, %d): %v", topo, n, err)
			}
			if got := len(wf.Tasks()); got != n {
				t.Errorf("Scale(%s, %d): %d tasks", topo, n, got)
			}
			if _, err := wf.TopologicalOrder(); err != nil {
				t.Errorf("Scale(%s, %d): not a DAG: %v", topo, n, err)
			}
		}
	}
}

func TestScaleDeterministic(t *testing.T) {
	gen := func() []byte {
		wf, err := Scale(ScaleSpec{Topology: "montage", Tasks: 500, Width: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		data, err := workflow.Marshal(wf)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := gen(), gen()
	if string(a) != string(b) {
		t.Fatal("same ScaleSpec produced different workflows")
	}
}

func TestScaleConnected(t *testing.T) {
	// Every block consumes the previous block's output, so the DAG must be
	// one weakly-connected component.
	for _, topo := range []string{"chain", "forkjoin", "montage"} {
		wf, err := Scale(ScaleSpec{Topology: topo, Tasks: 1000, Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		tasks := wf.Tasks()
		seen := map[*workflow.Task]bool{tasks[0]: true}
		queue := []*workflow.Task{tasks[0]}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range append(append([]*workflow.Task{}, cur.Parents()...), cur.Children()...) {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		if len(seen) != len(tasks) {
			t.Errorf("%s: %d of %d tasks reachable from task 0", topo, len(seen), len(tasks))
		}
	}
}

func TestParseScaleSpec(t *testing.T) {
	spec, err := ParseScaleSpec("montage:100000:512")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Topology != "montage" || spec.Tasks != 100000 || spec.Width != 512 {
		t.Fatalf("parsed %+v", spec)
	}
	for _, bad := range []string{"", "chain", "chain:x", "chain:0", "chain:5:0", "a:1:2:3"} {
		if _, err := ParseScaleSpec(bad); err == nil {
			t.Errorf("ParseScaleSpec(%q): no error", bad)
		}
	}
	if _, err := Scale(ScaleSpec{Topology: "ring", Tasks: 5}); err == nil {
		t.Error("unknown topology: no error")
	}
}
