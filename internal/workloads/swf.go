package workloads

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"bbwfsim/internal/units"
)

// SWFOptions tunes the mapping from a Standard Workload Format trace to
// sched jobs. The zero value is usable.
type SWFOptions struct {
	// BBPerProc is the burst-buffer demand attributed to each requested
	// processor when the trace's requested-memory field is absent (-1 or
	// 0). Zero leaves such jobs without a BB reservation (they still
	// stage through the BB channel with zero bytes held).
	BBPerProc units.Bytes
	// MaxJobs stops parsing after this many accepted jobs; 0 is
	// unlimited. Lets experiments take a prefix of a large trace.
	MaxJobs int
}

// swfFields is the column count of a Standard Workload Format record.
const swfFields = 18

// ParseSWF reads a subset of the Standard Workload Format
// (https://www.cs.huji.ac.il/labs/parallel/workload/swf.html): lines of 18
// whitespace-separated numeric fields, `;`-prefixed comment headers, and
// blank lines. The fields used are job number (1), submit time (2), run
// time (4), allocated processors (5), requested processors (8), requested
// time (9), and requested memory per processor in KB (10); the rest are
// accepted and ignored. Requested values fall back to the corresponding
// actual values when absent (-1), as the SWF specification prescribes.
//
// Jobs the trace marks unrunnable — zero or negative runtime, no
// processors — are skipped, not errors (real traces carry cancelled
// jobs); malformed lines (wrong field count, non-numeric fields, negative
// submit times) are errors. Processor counts map 1:1 to sched nodes.
func ParseSWF(r io.Reader, opts SWFOptions) ([]Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var jobs []Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != swfFields {
			return nil, fmt.Errorf("workloads: swf line %d: %d fields, want %d", lineNo, len(fields), swfFields)
		}
		v := make([]float64, swfFields)
		for i, f := range fields {
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workloads: swf line %d field %d: %v", lineNo, i+1, err)
			}
			v[i] = x
		}
		submit := v[1]
		if submit < 0 {
			return nil, fmt.Errorf("workloads: swf line %d: negative submit time %g", lineNo, submit)
		}
		runtime := v[3]
		procs := v[7] // requested processors …
		if procs <= 0 {
			procs = v[4] // … fall back to allocated
		}
		walltime := v[8] // requested time …
		if walltime <= 0 {
			walltime = runtime // … fall back to actual
		}
		if runtime <= 0 || procs <= 0 {
			continue // cancelled or failed-before-start job: skip
		}
		var demand units.Bytes
		if mem := v[9]; mem > 0 {
			demand = units.Bytes(mem) * units.KiB * units.Bytes(procs)
		} else {
			demand = opts.BBPerProc * units.Bytes(procs)
		}
		j := Job{
			ID:       fmt.Sprintf("swf-%d", int64(v[0])),
			Submit:   submit,
			Runtime:  runtime,
			Walltime: walltime,
			Nodes:    int(procs),
			BBDemand: demand,
			StageIn:  demand,
			StageOut: demand / 2,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workloads: swf line %d: %v", lineNo, err)
		}
		jobs = append(jobs, j)
		if opts.MaxJobs > 0 && len(jobs) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workloads: swf: %w", err)
	}
	return jobs, nil
}
