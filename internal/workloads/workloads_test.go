package workloads

import (
	"testing"
	"testing/quick"

	"bbwfsim/internal/units"
)

func TestChainShape(t *testing.T) {
	w, err := Chain(5, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 5 {
		t.Errorf("chain depth = %d, want 5", len(levels))
	}
	for _, lv := range levels {
		if len(lv) != 1 {
			t.Errorf("chain level width = %d, want 1", len(lv))
		}
	}
	// 4 edges × default FewLarge (1 file).
	if got := len(w.Files()); got != 4 {
		t.Errorf("files = %d, want 4", got)
	}
}

func TestForkJoinShape(t *testing.T) {
	w, err := ForkJoin(8, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Tasks()); got != 10 {
		t.Fatalf("tasks = %d, want 10", got)
	}
	src, sink := w.Task("source"), w.Task("sink")
	if len(src.Children()) != 8 {
		t.Errorf("source children = %d, want 8", len(src.Children()))
	}
	if len(sink.Parents()) != 8 {
		t.Errorf("sink parents = %d, want 8", len(sink.Parents()))
	}
}

func TestReduceTreeShape(t *testing.T) {
	w, err := ReduceTree(8, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 leaves + 4 + 2 + 1 = 15 tasks; single sink.
	if got := len(w.Tasks()); got != 15 {
		t.Errorf("tasks = %d, want 15", got)
	}
	if got := len(w.Sinks()); got != 1 {
		t.Errorf("sinks = %d, want 1", got)
	}
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 4 { // leaves + 3 reduction rounds
		t.Errorf("depth = %d, want 4", len(levels))
	}
}

func TestReduceTreeOddLeaves(t *testing.T) {
	w, err := ReduceTree(5, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Sinks()); got != 1 {
		t.Errorf("sinks = %d, want 1 (odd leaf carried over)", got)
	}
}

func TestBroadcastSharesOneEdge(t *testing.T) {
	w, err := Broadcast(8, Params{Regime: FewLarge})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Files()); got != 1 {
		t.Fatalf("files = %d, want 1 shared file", got)
	}
	if got := len(w.Files()[0].Consumers()); got != 8 {
		t.Errorf("shared file consumers = %d, want 8", got)
	}
}

func TestRegimesCarrySameBytes(t *testing.T) {
	if ManySmall.Bytes() != FewLarge.Bytes() {
		t.Errorf("regimes differ in volume: %v vs %v", ManySmall.Bytes(), FewLarge.Bytes())
	}
	small, err := Chain(3, Params{Regime: ManySmall})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Chain(3, Params{Regime: FewLarge})
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := small.ComputeStats()
	ls, _ := large.ComputeStats()
	if ss.TotalBytes != ls.TotalBytes {
		t.Errorf("regime volumes differ: %v vs %v", ss.TotalBytes, ls.TotalBytes)
	}
	if ss.Files != 64*ls.Files {
		t.Errorf("file counts: %d vs %d, want 64×", ss.Files, ls.Files)
	}
}

func TestRandomLayeredValidAndDeterministic(t *testing.T) {
	f := func(seed int64, rawDensity uint8) bool {
		density := float64(rawDensity%101) / 100
		a, err := RandomLayered(seed, 3, 5, density, Params{})
		if err != nil {
			return false
		}
		if a.Validate() != nil {
			return false
		}
		b, err := RandomLayered(seed, 3, 5, density, Params{})
		if err != nil {
			return false
		}
		if len(a.Tasks()) != len(b.Tasks()) || len(a.Files()) != len(b.Files()) {
			return false
		}
		for i, task := range a.Tasks() {
			if b.Tasks()[i].ID() != task.ID() || len(b.Tasks()[i].Inputs()) != len(task.Inputs()) {
				return false
			}
		}
		// Non-source tasks always have at least one parent (connected).
		levels, err := a.Levels()
		if err != nil {
			return false
		}
		return len(levels) == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Chain(0, Params{}); err == nil {
		t.Error("chain(0) accepted")
	}
	if _, err := ForkJoin(0, Params{}); err == nil {
		t.Error("forkjoin(0) accepted")
	}
	if _, err := ReduceTree(1, Params{}); err == nil {
		t.Error("reduce(1) accepted")
	}
	if _, err := Broadcast(0, Params{}); err == nil {
		t.Error("broadcast(0) accepted")
	}
	if _, err := RandomLayered(1, 0, 3, 0.5, Params{}); err == nil {
		t.Error("layered(0 layers) accepted")
	}
	if _, err := RandomLayered(1, 3, 3, 1.5, Params{}); err == nil {
		t.Error("density 1.5 accepted")
	}
}

func TestPatternsCatalog(t *testing.T) {
	pats, err := Patterns(Params{Regime: ManySmall, Work: units.Flops(10e9)})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"chain", "fork-join", "reduce-tree", "broadcast", "random-layered"}
	for _, name := range want {
		w, ok := pats[name]
		if !ok {
			t.Errorf("pattern %q missing", name)
			continue
		}
		if err := w.Validate(); err != nil {
			t.Errorf("pattern %q invalid: %v", name, err)
		}
	}
}
