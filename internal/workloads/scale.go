package workloads

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// ScaleSpec configures the WfBench-style scale generator (arXiv:2210.03170):
// synthetic workflows of arbitrary, exact task counts whose structure
// resembles real scientific workflows, for measuring the simulator's own
// ceiling rather than any application result.
type ScaleSpec struct {
	// Topology selects the DAG shape: "chain" (one linear pipeline),
	// "forkjoin" (chained source→workers→sink blocks), or "montage"
	// (chained mosaic blocks: project level, overlap-fit level, an N:1
	// concat, a 1:N background broadcast, and an add step — the Montage
	// shape WfBench models).
	Topology string
	// Tasks is the exact number of tasks to generate (≥ 1).
	Tasks int
	// Width bounds the parallel level width of forkjoin/montage blocks.
	// Defaults to 256 — wide enough to saturate any preset platform,
	// narrow enough that the ready queue stays far from O(Tasks).
	Width int
	// Seed drives the deterministic ±20% per-task work jitter.
	Seed int64
	// FileSize is the size of every produced file (default 16 MiB).
	FileSize units.Bytes
	// Work is the mean sequential compute work per task (default 5 s at
	// the Cori core speed, kept small so million-task runs stay short).
	Work units.Flops
}

func (s ScaleSpec) withDefaults() ScaleSpec {
	q := s
	if q.Width <= 0 {
		q.Width = 256
	}
	if q.FileSize <= 0 {
		q.FileSize = 16 * units.MiB
	}
	if q.Work == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.Work = units.Flops(5 * 36.80e9)
	}
	return q
}

// ParseScaleSpec parses "<topology>:<tasks>[:<width>]", e.g. "chain:1000000"
// or "montage:100000:512" — the syntax of bbsim's -gen flag.
func ParseScaleSpec(s string) (ScaleSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return ScaleSpec{}, fmt.Errorf("workloads: scale spec %q: want <topology>:<tasks>[:<width>]", s)
	}
	spec := ScaleSpec{Topology: parts[0]}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return ScaleSpec{}, fmt.Errorf("workloads: scale spec %q: bad task count %q", s, parts[1])
	}
	spec.Tasks = n
	if len(parts) == 3 {
		w, err := strconv.Atoi(parts[2])
		if err != nil || w < 1 {
			return ScaleSpec{}, fmt.Errorf("workloads: scale spec %q: bad width %q", s, parts[2])
		}
		spec.Width = w
	}
	return spec, nil
}

// scaleGen carries generation state: the builder plus the jitter stream and
// the output files of the previous block, which the next block consumes so
// the whole workflow is one connected DAG.
type scaleGen struct {
	b    *builder
	rng  *rand.Rand
	prev []string // files linking the previous block to the next
	seq  int
}

// Scale generates a workflow with exactly spec.Tasks tasks. The same spec
// always yields the same workflow, bit for bit.
func Scale(spec ScaleSpec) (*workflow.Workflow, error) {
	spec = spec.withDefaults()
	if spec.Tasks < 1 {
		return nil, fmt.Errorf("workloads: scale task count %d", spec.Tasks)
	}
	name := fmt.Sprintf("scale-%s-%d", spec.Topology, spec.Tasks)
	g := &scaleGen{
		b:   newBuilder(name, Params{Work: spec.Work, Regime: FileRegime{Count: 1, Size: spec.FileSize}}),
		rng: rand.New(rand.NewSource(spec.Seed)),
	}
	remaining := spec.Tasks
	for remaining > 0 {
		switch spec.Topology {
		case "chain":
			remaining -= g.chainBlock(remaining, false, spec)
		case "forkjoin":
			// A full block is source + width workers + sink. Shrink the last
			// block's width to land exactly on the budget; a remainder too
			// small for any block (< 3 tasks) degrades to a chain tail.
			if remaining < 3 {
				remaining -= g.chainBlock(remaining, false, spec)
				continue
			}
			w := min(spec.Width, remaining-2)
			remaining -= g.forkJoinBlock(w, remaining-(w+2) > 0, spec)
		case "montage":
			// A full block is 3w+2 tasks (project w, fit w, concat, bg w,
			// add). Degrade small remainders to fork-join, then chain.
			if remaining < 5 {
				remaining -= g.chainBlock(remaining, false, spec)
				continue
			}
			w := min(spec.Width, (remaining-2)/3)
			remaining -= g.montageBlock(w, remaining-(3*w+2) > 0, spec)
		default:
			return nil, fmt.Errorf("workloads: unknown scale topology %q (want chain, forkjoin, or montage)", spec.Topology)
		}
	}
	return g.b.w, nil
}

// work returns the next jittered task work: mean ±20%, deterministic in
// generation order.
func (g *scaleGen) work(spec ScaleSpec) units.Flops {
	return units.Flops(float64(spec.Work) * (0.8 + 0.4*g.rng.Float64()))
}

// task adds one task consuming in and producing out.
func (g *scaleGen) task(id, name string, in, out []string, spec ScaleSpec) {
	g.b.w.MustAddTask(workflow.TaskSpec{
		ID: id, Name: name,
		Work: g.work(spec), Cores: 1, LambdaIO: g.b.p.LambdaIO,
		Inputs: in, Outputs: out,
	})
}

// file registers one fresh file and returns its ID.
func (g *scaleGen) file(spec ScaleSpec) string {
	id := "f" + strconv.Itoa(g.seq)
	g.seq++
	g.b.w.MustAddFile(id, spec.FileSize)
	return id
}

// chainBlock emits n tasks in a line, consuming g.prev. When linked, the
// last task produces a file for the next block.
func (g *scaleGen) chainBlock(n int, linked bool, spec ScaleSpec) int {
	in := g.prev
	for i := 0; i < n; i++ {
		var out []string
		if i < n-1 || linked {
			out = []string{g.file(spec)}
		}
		g.task("t"+strconv.Itoa(g.b.seq), "stage", in, out, spec)
		g.b.seq++
		in = out
	}
	g.prev = in
	return n
}

// forkJoinBlock emits source → w workers → sink (w+2 tasks).
func (g *scaleGen) forkJoinBlock(w int, linked bool, spec ScaleSpec) int {
	blk := strconv.Itoa(g.b.seq)
	g.b.seq++
	forks := make([]string, w)
	for i := range forks {
		forks[i] = g.file(spec)
	}
	g.task("src"+blk, "source", g.prev, forks, spec)
	joins := make([]string, w)
	for i := 0; i < w; i++ {
		joins[i] = g.file(spec)
		g.task("w"+blk+"_"+strconv.Itoa(i), "worker", forks[i:i+1], joins[i:i+1], spec)
	}
	var out []string
	if linked {
		out = []string{g.file(spec)}
	}
	g.task("snk"+blk, "sink", joins, out, spec)
	g.prev = out
	return w + 2
}

// montageBlock emits one mosaic block (3w+2 tasks): w project tasks, w fit
// tasks each reading two adjacent project outputs (the overlap pattern), an
// N:1 concat, a 1:N broadcast to w background tasks, and an add step.
func (g *scaleGen) montageBlock(w int, linked bool, spec ScaleSpec) int {
	blk := strconv.Itoa(g.b.seq)
	g.b.seq++
	proj := make([]string, w)
	for i := 0; i < w; i++ {
		proj[i] = g.file(spec)
		g.task("proj"+blk+"_"+strconv.Itoa(i), "project", g.prev, proj[i:i+1], spec)
	}
	fits := make([]string, w)
	for i := 0; i < w; i++ {
		fits[i] = g.file(spec)
		in := []string{proj[i], proj[(i+1)%w]}
		if w == 1 {
			in = proj[:1]
		}
		g.task("fit"+blk+"_"+strconv.Itoa(i), "fit", in, fits[i:i+1], spec)
	}
	concat := g.file(spec)
	g.task("cat"+blk, "concat", fits, []string{concat}, spec)
	bgs := make([]string, w)
	for i := 0; i < w; i++ {
		bgs[i] = g.file(spec)
		g.task("bg"+blk+"_"+strconv.Itoa(i), "background", []string{concat}, bgs[i:i+1], spec)
	}
	var out []string
	if linked {
		out = []string{g.file(spec)}
	}
	g.task("add"+blk, "add", bgs, out, spec)
	g.prev = out
	return 3*w + 2
}
