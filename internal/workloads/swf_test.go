package workloads

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"bbwfsim/internal/units"
)

// swfLine renders one 18-field SWF record with the given interesting
// fields; the remaining columns carry the spec's "-1" placeholder.
func swfLine(id int, submit, run float64, alloc, reqProcs int, reqTime, reqMemKB float64) string {
	f := make([]string, 18)
	for i := range f {
		f[i] = "-1"
	}
	f[0] = fmt.Sprintf("%d", id)
	f[1] = fmt.Sprintf("%g", submit)
	f[3] = fmt.Sprintf("%g", run)
	f[4] = fmt.Sprintf("%d", alloc)
	f[7] = fmt.Sprintf("%d", reqProcs)
	f[8] = fmt.Sprintf("%g", reqTime)
	f[9] = fmt.Sprintf("%g", reqMemKB)
	return strings.Join(f, " ")
}

func TestParseSWFBasic(t *testing.T) {
	doc := strings.Join([]string{
		"; Version: 2.2",
		";  Computer: test cluster",
		"",
		swfLine(1, 0, 120, 4, 4, 300, 1024),
		swfLine(2, 30, 60, 2, -1, -1, -1),  // requested fields fall back to actuals
		swfLine(3, 45, -1, 4, 4, 100, -1),  // cancelled: skipped
		swfLine(4, 50, 100, -1, -1, 60, 0), // no processors at all: skipped
	}, "\n")
	jobs, err := ParseSWF(strings.NewReader(doc), SWFOptions{BBPerProc: 2 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("parsed %d jobs, want 2", len(jobs))
	}
	j := jobs[0]
	if j.ID != "swf-1" || j.Nodes != 4 || j.Runtime != 120 || j.Walltime != 300 {
		t.Fatalf("job 1 parsed wrong: %+v", j)
	}
	if want := units.Bytes(1024) * units.KiB * 4; j.BBDemand != want {
		t.Fatalf("job 1 BB demand %v, want %v (memory field)", j.BBDemand, want)
	}
	k := jobs[1]
	if k.Nodes != 2 || k.Walltime != 60 {
		t.Fatalf("job 2 fallbacks wrong: %+v", k)
	}
	if want := 2 * units.GiB * 2; k.BBDemand != want {
		t.Fatalf("job 2 BB demand %v, want %v (BBPerProc fallback)", k.BBDemand, want)
	}
}

func TestParseSWFMaxJobs(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintln(&b, swfLine(i, float64(i), 10, 1, 1, 20, -1))
	}
	jobs, err := ParseSWF(strings.NewReader(b.String()), SWFOptions{MaxJobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("MaxJobs ignored: got %d jobs", len(jobs))
	}
}

func TestParseSWFErrors(t *testing.T) {
	bad := []string{
		"1 2 3",                          // wrong field count
		swfLine(1, -5, 10, 1, 1, 20, -1), // negative submit
		strings.Replace(swfLine(1, 0, 10, 1, 1, 20, -1), "10", "ten", 1), // non-numeric
		swfLine(1, 0, 10, 1, 1, 20, -1) + " 99",                          // 19 fields
	}
	for _, doc := range bad {
		if _, err := ParseSWF(strings.NewReader(doc), SWFOptions{}); err == nil {
			t.Errorf("ParseSWF accepted malformed line %q", doc)
		}
	}
}

// FuzzParseSWF is the native fuzz target: whatever the input, ParseSWF
// must return jobs that each pass Validate, or an error — never panic.
func FuzzParseSWF(f *testing.F) {
	seeds := []string{
		"",
		"; comment only\n",
		swfLine(1, 0, 120, 4, 4, 300, 1024),
		swfLine(1, -1, 120, 4, 4, 300, 1024),
		"1 2 3 4\n",
		"NaN " + strings.Repeat("-1 ", 17),
		"1 Inf " + strings.Repeat("-1 ", 16),
		strings.Repeat("1 ", 18),
		"\x00\x01\x02",
		swfLine(2, 0, 1e308, 1, 1, 1e308, 1e308),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		jobs, err := ParseSWF(strings.NewReader(string(data)), SWFOptions{BBPerProc: units.GiB})
		if err != nil {
			return
		}
		for i := range jobs {
			if verr := jobs[i].Validate(); verr != nil {
				t.Fatalf("ParseSWF accepted a job Validate rejects: %v", verr)
			}
		}
	})
}

// TestParseSWFSeededRandomDocs throws ~500 seeded random documents at the
// parser — valid records, negative fields, truncated lines, comment
// headers, spliced garbage — mirroring the workflow-JSON fuzz suite.
// ParseSWF must classify each one (jobs or error) without panicking, and
// every accepted job must validate.
func TestParseSWFSeededRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 500; iter++ {
		var b strings.Builder
		lines := rng.Intn(8)
		for l := 0; l < lines; l++ {
			switch rng.Intn(10) {
			case 0:
				fmt.Fprintf(&b, "; header %d\n", rng.Intn(100))
			case 1:
				fmt.Fprintln(&b)
			case 2: // wrong field count
				n := rng.Intn(25)
				fmt.Fprintln(&b, strings.TrimSpace(strings.Repeat("1 ", n)))
			case 3: // garbage token in a random column
				fields := strings.Fields(swfLine(l, float64(rng.Intn(100)), float64(rng.Intn(500)), 1+rng.Intn(8), 1+rng.Intn(8), float64(rng.Intn(1000)), float64(rng.Intn(4096))))
				fields[rng.Intn(len(fields))] = "garbage"
				fmt.Fprintln(&b, strings.Join(fields, " "))
			default: // structurally fine record with occasionally negative fields
				line := swfLine(l,
					float64(rng.Intn(200)-20),
					float64(rng.Intn(500)-50),
					rng.Intn(10)-1, rng.Intn(10)-1,
					float64(rng.Intn(600)-60),
					float64(rng.Intn(4096)-256))
				fmt.Fprintln(&b, line)
			}
		}
		doc := b.String()
		// Occasionally truncate mid-line.
		if len(doc) > 0 && rng.Intn(5) == 0 {
			doc = doc[:rng.Intn(len(doc))]
		}
		jobs, err := ParseSWF(strings.NewReader(doc), SWFOptions{BBPerProc: units.Bytes(rng.Intn(3)) * units.GiB})
		if err != nil {
			continue
		}
		for i := range jobs {
			if verr := jobs[i].Validate(); verr != nil {
				t.Fatalf("iter %d: accepted job fails Validate: %v\ndoc:\n%s", iter, verr, doc)
			}
		}
	}
}

func TestCampaignDeterministicAndValid(t *testing.T) {
	spec := CampaignSpec{Jobs: 200, Seed: 7}
	a, err := Campaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("campaign lengths %d/%d, want 200", len(a), len(b))
	}
	prev := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs between identical specs:\n%+v\n%+v", i, a[i], b[i])
		}
		if err := a[i].Validate(); err != nil {
			t.Fatalf("generated job invalid: %v", err)
		}
		if a[i].Submit < prev {
			t.Fatalf("job %d submits at %g before job %d at %g", i, a[i].Submit, i-1, prev)
		}
		prev = a[i].Submit
	}
	c, err := Campaign(CampaignSpec{Jobs: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Runtime == c[i].Runtime { // counting identical draws across different seeds
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical campaign")
	}
}

func TestCampaignRejectsBadSpec(t *testing.T) {
	if _, err := Campaign(CampaignSpec{}); err == nil {
		t.Fatal("Campaign accepted a zero job count")
	}
	if _, err := Campaign(CampaignSpec{Jobs: 5, ArrivalMean: -1}); err == nil {
		t.Fatal("Campaign accepted a negative arrival mean")
	}
}
