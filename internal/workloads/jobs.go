package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"bbwfsim/internal/units"
)

// Job is one batch job of a multi-tenant campaign (internal/sched): a
// rigid allocation of compute nodes plus a burst-buffer reservation,
// executed as the BBSimulator-style three-phase stage-in / run / stage-out
// sequence. Jobs come from SWF trace files (ParseSWF) or from the seeded
// synthetic generator (Campaign).
type Job struct {
	// ID identifies the job in traces and result tables.
	ID string
	// Submit is the job's arrival instant in virtual seconds.
	Submit float64
	// Runtime is the actual compute-phase duration in seconds.
	Runtime float64
	// Walltime is the user's runtime estimate the scheduler plans with
	// (backfill shadow times, plan-based reservations). It may over- or
	// underestimate Runtime, exactly as real SWF estimates do.
	Walltime float64
	// Nodes is the rigid node allocation the job holds while active.
	Nodes int
	// BBDemand is the burst-buffer reservation held from stage-in start
	// to stage-out end (zero for jobs that bypass the BB).
	BBDemand units.Bytes
	// StageIn and StageOut are the bytes moved before and after the
	// compute phase.
	StageIn  units.Bytes
	StageOut units.Bytes
}

// Validate reports structural errors that make a job unschedulable on any
// cluster (a scheduler rejects such jobs at admission instead of failing).
func (j *Job) Validate() error {
	if j.ID == "" {
		return fmt.Errorf("workloads: job with empty ID")
	}
	if j.Submit < 0 || math.IsNaN(j.Submit) || math.IsInf(j.Submit, 0) {
		return fmt.Errorf("workloads: job %s: submit time %g", j.ID, j.Submit)
	}
	if j.Runtime <= 0 || math.IsNaN(j.Runtime) || math.IsInf(j.Runtime, 0) {
		return fmt.Errorf("workloads: job %s: runtime %g", j.ID, j.Runtime)
	}
	if j.Walltime <= 0 || math.IsNaN(j.Walltime) || math.IsInf(j.Walltime, 0) {
		return fmt.Errorf("workloads: job %s: walltime estimate %g", j.ID, j.Walltime)
	}
	if j.Nodes <= 0 {
		return fmt.Errorf("workloads: job %s: node request %d", j.ID, j.Nodes)
	}
	for _, v := range []units.Bytes{j.BBDemand, j.StageIn, j.StageOut} {
		if v < 0 || math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("workloads: job %s: bad data volume %g", j.ID, float64(v))
		}
	}
	return nil
}

// CampaignSpec parameterizes the synthetic campaign generator. The zero
// value of every field selects a default, so CampaignSpec{Jobs: 1000,
// Seed: 1} is a complete specification.
type CampaignSpec struct {
	// Jobs is the campaign length (required, positive).
	Jobs int
	// Seed drives every draw; same spec, same campaign, bit for bit.
	Seed int64
	// ArrivalMean is the exponential inter-arrival mean in seconds
	// (default 30).
	ArrivalMean float64
	// RuntimeMean is the exponential runtime mean in seconds (default
	// 600). Runtimes are clamped to ≥ 10 s.
	RuntimeMean float64
	// MaxNodes bounds the per-job node request; requests are drawn
	// log-uniformly in [1, MaxNodes] (default 16).
	MaxNodes int
	// BBMean is the mean burst-buffer demand per requested node
	// (default 16 GiB). Demands are whole-MiB multiples so byte tallies
	// stay exact float sums.
	BBMean units.Bytes
}

func (s *CampaignSpec) withDefaults() (CampaignSpec, error) {
	q := *s
	if q.Jobs <= 0 {
		return q, fmt.Errorf("workloads: campaign needs a positive job count, got %d", q.Jobs)
	}
	if q.ArrivalMean == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.ArrivalMean = 30
	}
	if q.RuntimeMean == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.RuntimeMean = 600
	}
	if q.MaxNodes == 0 {
		q.MaxNodes = 16
	}
	if q.BBMean == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.BBMean = 16 * units.GiB
	}
	if q.ArrivalMean < 0 || q.RuntimeMean < 0 || q.MaxNodes < 0 || q.BBMean < 0 {
		return q, fmt.Errorf("workloads: campaign spec has negative parameters")
	}
	return q, nil
}

// Campaign generates a seeded synthetic job campaign: exponential
// arrivals, exponential runtimes, log-uniform node requests, and per-node
// burst-buffer demands in whole MiB. Walltime estimates multiply the true
// runtime by a factor drawn in [1, 3] — the over-estimation behavior real
// SWF traces exhibit — with one job in eight underestimating (factor in
// [0.5, 1)), so schedulers must tolerate estimate violations.
func Campaign(spec CampaignSpec) ([]Job, error) {
	s, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	jobs := make([]Job, 0, s.Jobs)
	now := 0.0
	logMax := math.Log(float64(s.MaxNodes))
	for i := 0; i < s.Jobs; i++ {
		now += -s.ArrivalMean * math.Log(1-rng.Float64())
		runtime := -s.RuntimeMean * math.Log(1-rng.Float64())
		if runtime < 10 {
			runtime = 10
		}
		nodes := int(math.Exp(rng.Float64() * logMax))
		if nodes < 1 {
			nodes = 1
		}
		if nodes > s.MaxNodes {
			nodes = s.MaxNodes
		}
		factor := 1 + 2*rng.Float64()
		if rng.Intn(8) == 0 {
			factor = 0.5 + 0.5*rng.Float64()
		}
		// Whole-MiB demands: exact float sums regardless of order.
		span := int(2 * s.BBMean / units.MiB)
		if span < 1 {
			span = 1
		}
		perNode := units.Bytes(1+rng.Intn(span)) * units.MiB
		demand := perNode * units.Bytes(nodes)
		jobs = append(jobs, Job{
			ID:       fmt.Sprintf("job-%06d", i),
			Submit:   now,
			Runtime:  runtime,
			Walltime: runtime * factor,
			Nodes:    nodes,
			BBDemand: demand,
			StageIn:  demand,
			StageOut: demand / 2,
		})
	}
	return jobs, nil
}
