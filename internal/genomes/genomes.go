// Package genomes generates instances of the 1000Genomes workflow used for
// the paper's large-scale case study (Section IV-C): a bioinformatics
// workflow that identifies mutational overlaps from 1000 Genomes Project
// data.
//
// Structure (per the paper and the WorkflowHub trace it references):
//
//   - individuals: parse a slice of one chromosome's data (many per
//     chromosome) — fan-out over 2504 individuals split into slices;
//   - individuals_merge: merge the slices of one chromosome;
//   - sifting: compute SIFT scores of the chromosome's SNP variants;
//   - populations: parse the super-population definitions (one task, its
//     seven outputs are shared by every downstream analysis task);
//   - mutation_overlap: per chromosome × population, overlap in mutations
//     among pairs of individuals;
//   - frequency: per chromosome × population, frequency of overlapping
//     mutations.
//
// The default 22-chromosome instance has exactly 903 tasks (22·(25+1+1+7+7)
// + 1 populations task) and a ~67 GB data footprint of which ~52 GB (77%)
// is workflow input, matching the instance the paper simulates. The
// 2-chromosome configuration reproduces the smaller setup of the paper's
// earlier real study ([10]) that Fig. 14 compares against.
//
// Work and λ_io values are synthetic calibration anchors (see DESIGN.md).
package genomes

import (
	"fmt"

	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Default instance shape.
const (
	DefaultChromosomes  = 22
	SlicesPerChromosome = 25 // individuals tasks per chromosome
	Populations         = 7  // super-population analyses per chromosome
	// Sizes are tuned so the 22-chromosome instance has a ~67 GB footprint
	// with ~52 GB (77%) of workflow input, the proportions the paper
	// reports for its simulated instance.
	SliceSize            = 90 * units.MiB
	SiftInputSize        = 40 * units.MiB
	PopulationFileSize   = 2 * units.MiB
	MergedSize           = 150 * units.MiB
	SiftedSize           = 20 * units.MiB
	OverlapResultSize    = 3 * units.MiB
	FrequencyResultSize  = 6 * units.MiB
	IndividualsSliceSize = 16 * units.MiB // per-slice parsed output
)

// Synthetic per-task sequential compute works, in flops at Cori core speed
// (36.8 GFlop/s): the seconds below are sequential compute times.
var (
	WorkIndividuals = flopsAtCori(60)
	WorkMerge       = flopsAtCori(120)
	WorkSifting     = flopsAtCori(90)
	WorkPopulations = flopsAtCori(30)
	WorkOverlap     = flopsAtCori(120)
	WorkFrequency   = flopsAtCori(150)
)

// Synthetic observed I/O fractions per task category.
const (
	LambdaIndividuals = 0.50
	LambdaMerge       = 0.40
	LambdaSifting     = 0.30
	LambdaPopulations = 0.60
	LambdaOverlap     = 0.20
	LambdaFrequency   = 0.20
)

func flopsAtCori(seconds float64) units.Flops {
	return units.Flops(seconds * 36.80e9)
}

// Params configures a generated instance.
type Params struct {
	// Chromosomes is the number of chromosomes processed (22 for the
	// paper's simulated instance, 2 for the prior-study reference).
	Chromosomes int
	// Slices overrides SlicesPerChromosome when positive.
	Slices int
	// CoresPerTask is the core request of every task (default 1, as the
	// workflow's tasks are single-core codes).
	CoresPerTask int
}

func (p *Params) withDefaults() Params {
	q := *p
	if q.Chromosomes == 0 {
		q.Chromosomes = DefaultChromosomes
	}
	if q.Slices == 0 {
		q.Slices = SlicesPerChromosome
	}
	if q.CoresPerTask == 0 {
		q.CoresPerTask = 1
	}
	return q
}

// New generates a 1000Genomes workflow instance.
func New(params Params) (*workflow.Workflow, error) {
	p := params.withDefaults()
	if p.Chromosomes <= 0 || p.Slices <= 0 || p.CoresPerTask < 0 {
		return nil, fmt.Errorf("genomes: invalid parameters %+v", p)
	}
	w := workflow.New(fmt.Sprintf("1000genomes-%dchr", p.Chromosomes))

	// Shared populations task: seven super-population files from one small
	// input.
	w.MustAddFile("populations.in", PopulationFileSize)
	var popFiles []string
	for k := 0; k < Populations; k++ {
		id := fmt.Sprintf("pop_%d.txt", k)
		w.MustAddFile(id, PopulationFileSize)
		popFiles = append(popFiles, id)
	}
	w.MustAddTask(workflow.TaskSpec{
		ID: "populations", Name: "populations",
		Work: WorkPopulations, Cores: p.CoresPerTask, LambdaIO: LambdaPopulations,
		Inputs: []string{"populations.in"}, Outputs: popFiles,
	})

	for c := 1; c <= p.Chromosomes; c++ {
		// individuals fan-out.
		var sliceOutputs []string
		for s := 0; s < p.Slices; s++ {
			in := fmt.Sprintf("chr%02d_slice%02d.vcf", c, s)
			out := fmt.Sprintf("chr%02d_ind%02d.out", c, s)
			w.MustAddFile(in, SliceSize)
			w.MustAddFile(out, IndividualsSliceSize)
			w.MustAddTask(workflow.TaskSpec{
				ID:   fmt.Sprintf("individuals_chr%02d_s%02d", c, s),
				Name: "individuals", Work: WorkIndividuals, Cores: p.CoresPerTask,
				LambdaIO: LambdaIndividuals,
				Inputs:   []string{in}, Outputs: []string{out},
			})
			sliceOutputs = append(sliceOutputs, out)
		}
		// individuals_merge.
		merged := fmt.Sprintf("chr%02d_merged.tar.gz", c)
		w.MustAddFile(merged, MergedSize)
		w.MustAddTask(workflow.TaskSpec{
			ID:   fmt.Sprintf("merge_chr%02d", c),
			Name: "individuals_merge", Work: WorkMerge, Cores: p.CoresPerTask,
			LambdaIO: LambdaMerge,
			Inputs:   sliceOutputs, Outputs: []string{merged},
		})
		// sifting.
		siftIn := fmt.Sprintf("chr%02d_sift.vcf", c)
		sifted := fmt.Sprintf("chr%02d_sifted.txt", c)
		w.MustAddFile(siftIn, SiftInputSize)
		w.MustAddFile(sifted, SiftedSize)
		w.MustAddTask(workflow.TaskSpec{
			ID:   fmt.Sprintf("sifting_chr%02d", c),
			Name: "sifting", Work: WorkSifting, Cores: p.CoresPerTask,
			LambdaIO: LambdaSifting,
			Inputs:   []string{siftIn}, Outputs: []string{sifted},
		})
		// Per-population analyses.
		for k := 0; k < Populations; k++ {
			ovl := fmt.Sprintf("chr%02d_pop%d_overlap.tar.gz", c, k)
			frq := fmt.Sprintf("chr%02d_pop%d_frequency.tar.gz", c, k)
			w.MustAddFile(ovl, OverlapResultSize)
			w.MustAddFile(frq, FrequencyResultSize)
			w.MustAddTask(workflow.TaskSpec{
				ID:   fmt.Sprintf("overlap_chr%02d_p%d", c, k),
				Name: "mutation_overlap", Work: WorkOverlap, Cores: p.CoresPerTask,
				LambdaIO: LambdaOverlap,
				Inputs:   []string{merged, sifted, popFiles[k]},
				Outputs:  []string{ovl},
			})
			w.MustAddTask(workflow.TaskSpec{
				ID:   fmt.Sprintf("frequency_chr%02d_p%d", c, k),
				Name: "frequency", Work: WorkFrequency, Cores: p.CoresPerTask,
				LambdaIO: LambdaFrequency,
				Inputs:   []string{merged, sifted, popFiles[k]},
				Outputs:  []string{frq},
			})
		}
	}
	return w, nil
}

// MustNew is New for known-good parameters.
func MustNew(params Params) *workflow.Workflow {
	w, err := New(params)
	if err != nil {
		panic(err)
	}
	return w
}
