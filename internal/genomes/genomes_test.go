package genomes

import (
	"testing"

	"bbwfsim/internal/units"
)

func TestPaperInstanceHas903Tasks(t *testing.T) {
	w := MustNew(Params{})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Tasks()); got != 903 {
		t.Errorf("tasks = %d, want 903 (the paper's instance)", got)
	}
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	// ~67 GB footprint, ~77% of it workflow input.
	gb := func(b units.Bytes) float64 { return float64(b) / 1e9 }
	if gb(s.TotalBytes) < 60 || gb(s.TotalBytes) > 75 {
		t.Errorf("footprint = %.1f GB, want ≈67 GB", gb(s.TotalBytes))
	}
	share := float64(s.InputBytes) / float64(s.TotalBytes)
	if share < 0.72 || share > 0.82 {
		t.Errorf("input share = %.2f, want ≈0.77", share)
	}
}

func TestTaskCategoryCounts(t *testing.T) {
	w := MustNew(Params{})
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"individuals":       22 * 25,
		"individuals_merge": 22,
		"sifting":           22,
		"mutation_overlap":  22 * 7,
		"frequency":         22 * 7,
		"populations":       1,
	}
	for name, n := range want {
		if s.TasksByName[name] != n {
			t.Errorf("%s = %d, want %d", name, s.TasksByName[name], n)
		}
	}
}

func TestDependencyStructure(t *testing.T) {
	w := MustNew(Params{Chromosomes: 1, Slices: 3})
	merge := w.Task("merge_chr01")
	if got := len(merge.Parents()); got != 3 {
		t.Errorf("merge parents = %d, want 3 (slices)", got)
	}
	ovl := w.Task("overlap_chr01_p0")
	// Parents: merge, sifting, populations.
	if got := len(ovl.Parents()); got != 3 {
		t.Errorf("overlap parents = %d, want 3", got)
	}
	frq := w.Task("frequency_chr01_p6")
	if got := len(frq.Parents()); got != 3 {
		t.Errorf("frequency parents = %d, want 3", got)
	}
	// Sinks are exactly the per-population analyses.
	if got := len(w.Sinks()); got != 14 {
		t.Errorf("sinks = %d, want 14", got)
	}
}

func TestTwoChromosomeReferenceConfig(t *testing.T) {
	w := MustNew(Params{Chromosomes: 2})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Tasks()); got != 2*41+1 {
		t.Errorf("tasks = %d, want 83", got)
	}
}

func TestPopulationsShared(t *testing.T) {
	w := MustNew(Params{Chromosomes: 3})
	pop := w.File("pop_0.txt")
	// Consumed by mutation_overlap and frequency of every chromosome.
	if got := len(pop.Consumers()); got != 6 {
		t.Errorf("pop_0 consumers = %d, want 6", got)
	}
}

func TestLevelsReflectPhases(t *testing.T) {
	w := MustNew(Params{Chromosomes: 2, Slices: 4})
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// Level 0: individuals + sifting + populations (all have no parents);
	// level 1: merges; level 2: analyses.
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if got := len(levels[0]); got != 2*4+2+1 {
		t.Errorf("level0 = %d, want 11", got)
	}
	if got := len(levels[1]); got != 2 {
		t.Errorf("level1 = %d, want 2 merges", got)
	}
	if got := len(levels[2]); got != 2*14 {
		t.Errorf("level2 = %d, want 28 analyses", got)
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := New(Params{Chromosomes: -1}); err == nil {
		t.Error("negative chromosomes accepted")
	}
	if _, err := New(Params{Slices: -1}); err == nil {
		t.Error("negative slices accepted")
	}
}

func TestCoresParameter(t *testing.T) {
	w := MustNew(Params{Chromosomes: 1, CoresPerTask: 4})
	if got := w.Task("sifting_chr01").Cores(); got != 4 {
		t.Errorf("cores = %d, want 4", got)
	}
}
