// Package testbed is the synthetic ground truth of this reproduction: a
// high-fidelity simulator of the Cori and Summit platforms that stands in
// for the real machines the paper measured (see DESIGN.md, substitution
// table).
//
// It runs the same execution engine as the lightweight simulator but adds
// the behaviors the paper observed and the lightweight model deliberately
// ignores:
//
//   - per-operation latency and metadata cost, mode-dependent (the striped
//     DataWarp mode is far more expensive per file operation than the
//     private mode on the 1:N small-file pattern);
//   - a collapsed per-stream rate on striped small-file access;
//   - concurrency-dependent metadata penalties (contention beyond fair
//     bandwidth sharing);
//   - the reproducible-but-unexplained stage-in anomaly at 75% staged
//     fraction in striped mode (paper Fig. 4);
//   - imperfect compute scaling (per-category Amdahl fraction plus a
//     per-core synchronization overhead, so Combine stops benefiting from
//     cores while Resample plateaus, paper Fig. 6);
//   - seeded multiplicative measurement noise, largest for the striped
//     mode and smallest on-node (paper Fig. 8);
//   - a PFS that is faster than its Table-I calibration value (real Lustre
//     outperforms the conservative calibrated figure, one of the error
//     sources the paper discusses).
//
// Every run is deterministic in (profile, scenario, seed, repetition).
package testbed

import (
	"fmt"
	"math"
	"math/rand"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Profile parameterizes one synthetic machine.
type Profile struct {
	Name     string
	Platform platform.Config

	// Per-operation latencies (seconds) and metadata penalties (seconds of
	// extra latency per operation already in flight on the service).
	BBReadLatency  float64
	BBWriteLatency float64
	// StageWriteLatency is the per-file cost of stage-in writes into the
	// BB. Staging streams data efficiently (DataWarp's stage API), so it
	// escapes both the task-I/O write latency and the striped small-file
	// collapse — but not the 75% anomaly.
	StageWriteLatency float64
	BBMetaPenalty     float64
	PFSReadLatency    float64
	PFSWriteLatency   float64
	PFSMetaPenalty    float64

	// SmallFileStreamCap, when positive, replaces the platform stream cap
	// for burst-buffer access to files below SmallFileThreshold — the
	// striped mode's metadata-bound collapse on small files.
	SmallFileStreamCap units.Bandwidth
	SmallFileThreshold units.Bytes

	// Striped stage-in anomaly (paper Fig. 4): writes to the BB during a
	// run whose staged fraction falls in [AnomalyLow, AnomalyHigh) are
	// stretched by AnomalyFactor.
	AnomalyLow    float64
	AnomalyHigh   float64
	AnomalyFactor float64

	// IONoiseCV and ComputeNoiseCV are the coefficients of variation of
	// the multiplicative lognormal noise applied to transfers and compute
	// phases.
	IONoiseCV      float64
	ComputeNoiseCV float64
	// LoadNoiseCV draws one background-load factor per repetition and
	// applies it to every I/O operation of that run: per-op noise averages
	// out over many operations, but competing load on a shared machine
	// moves the whole run — the dominant variability the paper measures
	// (Fig. 8, ~15% for the striped mode).
	LoadNoiseCV float64

	// Compute scaling truth: per task category, the Amdahl fraction and a
	// per-core overhead in seconds (synchronization/locking, the reason
	// Combine gains nothing from more cores).
	Alpha        map[string]float64
	GammaPerCore map[string]float64
}

// Scenario describes one experimental configuration.
type Scenario struct {
	// StagedFraction is the fraction of stageable input files placed on
	// the burst buffer (the paper's x-axis).
	StagedFraction float64
	// IntermediatesToBB sends intermediate files to the BB instead of the
	// PFS (the two series of Fig. 5).
	IntermediatesToBB bool
	// CoresPerTask overrides compute tasks' core request when positive.
	CoresPerTask int
	// PrePlaceInputs places true workflow inputs on their targets at time
	// zero (used by the 1000Genomes case study, whose stage-in is outside
	// the measured makespan).
	PrePlaceInputs bool
}

// Result aggregates the repetitions of one scenario.
type Result struct {
	Makespans []float64
	// TaskMeans maps a task category to its per-repetition mean execution
	// time.
	TaskMeans map[string][]float64
	// BBReadBW / BBWriteBW are per-repetition achieved burst-buffer
	// bandwidths.
	BBReadBW  []float64
	BBWriteBW []float64
	// LastTrace is the trace of the final repetition (for inspection).
	LastTrace *trace.Trace
}

// MeanMakespan returns the mean makespan across repetitions.
func (r *Result) MeanMakespan() float64 { return mean(r.Makespans) }

// TaskMean returns the across-repetition mean execution time of a task
// category.
func (r *Result) TaskMean(name string) float64 { return mean(r.TaskMeans[name]) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Runner executes scenarios against a profile.
type Runner struct {
	Profile Profile
	Seed    int64
}

// NewRunner returns a runner with the given base seed.
func NewRunner(p Profile, seed int64) *Runner {
	return &Runner{Profile: p, Seed: seed}
}

// RunOnce executes one repetition and returns its trace.
func (r *Runner) RunOnce(wf *workflow.Workflow, sc Scenario, rep int) (*trace.Trace, error) {
	eng := sim.NewEngine()
	plat, err := platform.New(eng, r.Profile.Platform)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed + int64(rep)*1_000_003))
	model := newOpModel(&r.Profile, sc, rng)
	sys := storage.NewSystem(plat, model)
	pol, err := placement.NewFraction(wf, sc.StagedFraction, sc.IntermediatesToBB)
	if err != nil {
		return nil, err
	}
	cm := &computeModel{prof: &r.Profile, rng: rand.New(rand.NewSource(r.Seed + int64(rep)*1_000_003 + 17))}
	return exec.Run(sys, wf, exec.Config{
		Placement:      pol,
		Compute:        cm,
		CoresPerTask:   sc.CoresPerTask,
		PrePlaceInputs: sc.PrePlaceInputs,
	})
}

// Run executes reps repetitions (the paper averages over 15) and
// aggregates.
func (r *Runner) Run(wf *workflow.Workflow, sc Scenario, reps int) (*Result, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("testbed: reps must be positive, got %d", reps)
	}
	res := &Result{TaskMeans: map[string][]float64{}}
	for rep := 0; rep < reps; rep++ {
		eng := sim.NewEngine()
		plat, err := platform.New(eng, r.Profile.Platform)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(r.Seed + int64(rep)*1_000_003))
		model := newOpModel(&r.Profile, sc, rng)
		sys := storage.NewSystem(plat, model)
		pol, err := placement.NewFraction(wf, sc.StagedFraction, sc.IntermediatesToBB)
		if err != nil {
			return nil, err
		}
		cm := &computeModel{prof: &r.Profile, rng: rand.New(rand.NewSource(r.Seed + int64(rep)*1_000_003 + 17))}
		tr, err := exec.Run(sys, wf, exec.Config{
			Placement:      pol,
			Compute:        cm,
			CoresPerTask:   sc.CoresPerTask,
			PrePlaceInputs: sc.PrePlaceInputs,
		})
		if err != nil {
			return nil, err
		}
		res.Makespans = append(res.Makespans, tr.Makespan())
		for _, s := range tr.Summarize() {
			res.TaskMeans[s.Name] = append(res.TaskMeans[s.Name], s.MeanExec)
		}
		bb := sys.BBStats()
		if bw := bb.ReadBandwidth(); bw > 0 {
			res.BBReadBW = append(res.BBReadBW, float64(bw))
		}
		if bw := bb.WriteBandwidth(); bw > 0 {
			res.BBWriteBW = append(res.BBWriteBW, float64(bw))
		}
		res.LastTrace = tr
	}
	return res, nil
}

// opModel implements storage.OpModel with the profile's overheads.
type opModel struct {
	prof *Profile
	sc   Scenario
	rng  *rand.Rand
	load float64 // per-run background-load factor, ≥ drawn once
}

func newOpModel(prof *Profile, sc Scenario, rng *rand.Rand) *opModel {
	m := &opModel{prof: prof, sc: sc, rng: rng, load: 1}
	if prof.LoadNoiseCV > 0 {
		m.load = lognormalFactor(rng, prof.LoadNoiseCV)
	}
	return m
}

func (m *opModel) Adjust(ctx storage.OpContext, base storage.OpParams) storage.OpParams {
	p := base
	switch ctx.Service.Kind() {
	case storage.KindPFS:
		switch ctx.Kind {
		case storage.OpRead:
			p.Latency += m.prof.PFSReadLatency
		default:
			p.Latency += m.prof.PFSWriteLatency
		}
		p.Latency += m.prof.PFSMetaPenalty * float64(ctx.InFlight)
	default: // burst buffers, shared or on-node
		// A write of a stage-in task's file is the staging itself: it uses
		// the efficient staging path, not the POSIX task-I/O path.
		stageWrite := ctx.Kind != storage.OpRead &&
			ctx.File.Producer() != nil && ctx.File.Producer().Kind() == workflow.KindStageIn
		switch {
		case stageWrite:
			p.Latency += m.prof.StageWriteLatency
		case ctx.Kind == storage.OpRead:
			p.Latency += m.prof.BBReadLatency
		default:
			p.Latency += m.prof.BBWriteLatency
		}
		p.Latency += m.prof.BBMetaPenalty * float64(ctx.InFlight)
		if !stageWrite && m.prof.SmallFileStreamCap > 0 && ctx.File.Size() < m.prof.SmallFileThreshold {
			//bbvet:allow float-compare -- zero is the "uncapped" sentinel bandwidth, never a computed rate
			if p.RateCap == 0 || m.prof.SmallFileStreamCap < p.RateCap {
				p.RateCap = m.prof.SmallFileStreamCap
			}
		}
		if m.prof.AnomalyFactor > 1 && stageWrite &&
			m.sc.StagedFraction >= m.prof.AnomalyLow && m.sc.StagedFraction < m.prof.AnomalyHigh {
			p.SizeFactor *= m.prof.AnomalyFactor
		}
	}
	if m.prof.IONoiseCV > 0 {
		p.SizeFactor *= lognormalFactor(m.rng, m.prof.IONoiseCV)
	}
	p.SizeFactor *= m.load
	p.Latency *= m.load
	return p
}

// computeModel implements exec.ComputeModel: the machine's "true" compute
// scaling, with per-category Amdahl fractions, per-core overhead, and
// noise. The lightweight simulator does not know any of this — it assumes
// perfect speedup — which is exactly the modeling gap the paper
// quantifies.
type computeModel struct {
	prof *Profile
	rng  *rand.Rand
}

func (m *computeModel) Duration(t *workflow.Task, node *platform.Node, cores int) float64 {
	alpha := m.prof.Alpha[t.Name()]
	gamma := m.prof.GammaPerCore[t.Name()]
	seq := float64(t.Work()) / float64(node.CoreSpeed())
	dur := seq*(alpha+(1-alpha)/float64(cores)) + gamma*float64(cores)
	if m.prof.ComputeNoiseCV > 0 {
		dur *= lognormalFactor(m.rng, m.prof.ComputeNoiseCV)
	}
	return dur
}

// lognormalFactor draws a multiplicative noise factor with the given
// coefficient of variation and unit median, clamped to [0.5, 3] so a tail
// draw cannot wreck a run.
func lognormalFactor(rng *rand.Rand, cv float64) float64 {
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	f := math.Exp(sigma * rng.NormFloat64())
	return math.Min(3, math.Max(0.5, f))
}
