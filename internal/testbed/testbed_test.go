package testbed

import (
	"testing"

	"bbwfsim/internal/stats"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/workflow"
)

func swarpWF(pipelines, cores int) *workflow.Workflow {
	return swarp.MustNew(swarp.Params{
		Pipelines:    pipelines,
		CoresPerTask: cores,
		ResampleWork: TrueResampleWork,
		CombineWork:  TrueCombineWork,
	})
}

func TestDeterministicPerSeed(t *testing.T) {
	wf := swarpWF(1, 32)
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true}
	r := NewRunner(CoriPrivate(1), 42)
	a, err := r.Run(wf, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(wf, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Makespans {
		if a.Makespans[i] != b.Makespans[i] {
			t.Errorf("rep %d: %v != %v (not deterministic)", i, a.Makespans[i], b.Makespans[i])
		}
	}
}

func TestRepetitionsVary(t *testing.T) {
	wf := swarpWF(1, 32)
	r := NewRunner(CoriPrivate(1), 7)
	res, err := r.Run(wf, Scenario{StagedFraction: 1, IntermediatesToBB: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Std(res.Makespans) == 0 {
		t.Error("repetitions identical despite noise model")
	}
}

func TestStripedTaskIOCollapse(t *testing.T) {
	wf := swarpWF(1, 32)
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true}
	priv, err := NewRunner(CoriPrivate(1), 1).Run(wf, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	str, err := NewRunner(CoriStriped(1), 1).Run(wf, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := str.TaskMean("resample") / priv.TaskMean("resample")
	t.Logf("resample: private=%.2fs striped=%.2fs ratio=%.1f×", priv.TaskMean("resample"), str.TaskMean("resample"), ratio)
	if ratio < 8 {
		t.Errorf("striped/private resample ratio = %.1f, want ≥ 8 (paper: 1–2 orders of magnitude)", ratio)
	}
	cratio := str.TaskMean("combine") / priv.TaskMean("combine")
	t.Logf("combine: private=%.2fs striped=%.2fs ratio=%.1f×", priv.TaskMean("combine"), str.TaskMean("combine"), cratio)
	if cratio < 8 {
		t.Errorf("striped/private combine ratio = %.1f, want ≥ 8", cratio)
	}
}

func TestOnNodeBeatsShared(t *testing.T) {
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true}
	wf := swarpWF(1, 32)
	priv, err := NewRunner(CoriPrivate(1), 1).Run(wf, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := NewRunner(Summit(1), 1).Run(wf, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stage-in: cori-private=%.2fs summit=%.2fs", priv.TaskMean("stage_in"), sum.TaskMean("stage_in"))
	ratio := priv.TaskMean("stage_in") / sum.TaskMean("stage_in")
	if ratio < 2.5 || ratio > 12 {
		t.Errorf("cori/summit stage-in ratio = %.1f, want ≈5 (paper Fig. 4: up to 5×)", ratio)
	}
	if sum.MeanMakespan() >= priv.MeanMakespan() {
		t.Error("summit should beat cori-private on makespan")
	}
}

func TestStripedAnomalyAt75(t *testing.T) {
	wf := swarpWF(1, 32)
	r := NewRunner(CoriStriped(1), 3)
	stage := func(frac float64) float64 {
		res, err := r.Run(wf, Scenario{StagedFraction: frac, IntermediatesToBB: true}, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.TaskMean("stage_in")
	}
	s50, s75, s100 := stage(0.50), stage(0.75), stage(1.0)
	t.Logf("striped stage-in: 50%%=%.2fs 75%%=%.2fs 100%%=%.2fs", s50, s75, s100)
	// The anomaly makes 75% disproportionately expensive: above the linear
	// interpolation between 50% and 100%.
	interp := (s50 + s100) / 2
	if s75 <= interp*1.15 {
		t.Errorf("no anomaly at 75%%: got %.2fs, linear interpolation %.2fs", s75, interp)
	}
	// The private mode has no anomaly.
	rp := NewRunner(CoriPrivate(1), 3)
	p50r, _ := rp.Run(wf, Scenario{StagedFraction: 0.50, IntermediatesToBB: true}, 5)
	p75r, _ := rp.Run(wf, Scenario{StagedFraction: 0.75, IntermediatesToBB: true}, 5)
	p100r, _ := rp.Run(wf, Scenario{StagedFraction: 1.0, IntermediatesToBB: true}, 5)
	pInterp := (p50r.TaskMean("stage_in") + p100r.TaskMean("stage_in")) / 2
	if p75r.TaskMean("stage_in") > pInterp*1.25 {
		t.Error("private mode shows an anomaly it should not have")
	}
}

func TestStageInGrowsWithFraction(t *testing.T) {
	wf := swarpWF(1, 32)
	for name, prof := range Profiles(1) {
		r := NewRunner(prof, 11)
		var prev float64 = -1
		for _, frac := range []float64{0, 0.25, 0.5, 1.0} {
			res, err := r.Run(wf, Scenario{StagedFraction: frac, IntermediatesToBB: true}, 3)
			if err != nil {
				t.Fatal(err)
			}
			cur := res.TaskMean("stage_in")
			if cur < prev*0.9 { // noise tolerance
				t.Errorf("%s: stage-in shrank from %.2f to %.2f at fraction %.2f", name, prev, cur, frac)
			}
			prev = cur
		}
	}
}

func TestVariabilityOrdering(t *testing.T) {
	// Paper Fig. 8: striped is the most variable, on-node the least.
	wf := swarpWF(4, 1)
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true}
	cv := func(p Profile) float64 {
		res, err := NewRunner(p, 5).Run(wf, sc, 10)
		if err != nil {
			t.Fatal(err)
		}
		return stats.CV(res.TaskMeans["resample"])
	}
	cvPriv, cvStr, cvSum := cv(CoriPrivate(1)), cv(CoriStriped(1)), cv(Summit(1))
	t.Logf("resample CV: private=%.3f striped=%.3f summit=%.3f", cvPriv, cvStr, cvSum)
	if !(cvStr > cvPriv && cvPriv > cvSum) {
		t.Errorf("variability ordering wrong: striped=%.3f private=%.3f summit=%.3f", cvStr, cvPriv, cvSum)
	}
}

func TestPipelineContentionOnCori(t *testing.T) {
	// Paper Fig. 7: up to ~3× slowdown at 32 concurrent pipelines on Cori,
	// near-negligible on Summit for resample.
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1}
	slowdown := func(p Profile) float64 {
		one, err := NewRunner(p, 2).Run(swarpWF(1, 1), sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		many, err := NewRunner(p, 2).Run(swarpWF(32, 1), sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		return many.TaskMean("resample") / one.TaskMean("resample")
	}
	cori := slowdown(CoriPrivate(1))
	summit := slowdown(Summit(1))
	t.Logf("resample slowdown at 32 pipelines: cori-private=%.2f× summit=%.2f×", cori, summit)
	if cori < 1.5 {
		t.Errorf("cori slowdown %.2f too small, want ≈3×", cori)
	}
	if summit > cori {
		t.Errorf("summit slowdown %.2f should be below cori's %.2f", summit, cori)
	}
}

func TestComputeModelShapes(t *testing.T) {
	// Combine gains little from cores; Resample gains until a plateau.
	wf1 := swarpWF(1, 1)
	wf32 := swarpWF(1, 32)
	r := NewRunner(CoriPrivate(1), 9)
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true}
	one, err := r.Run(wf1, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	many, err := r.Run(wf32, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	resGain := one.TaskMean("resample") / many.TaskMean("resample")
	comGain := one.TaskMean("combine") / many.TaskMean("combine")
	t.Logf("1→32 cores: resample gain=%.2f× combine gain=%.2f×", resGain, comGain)
	if resGain < 2 {
		t.Errorf("resample should benefit from cores, gain=%.2f", resGain)
	}
	if comGain > resGain {
		t.Errorf("combine gain %.2f should not exceed resample gain %.2f", comGain, resGain)
	}
}

func TestRunValidation(t *testing.T) {
	wf := swarpWF(1, 1)
	r := NewRunner(CoriPrivate(1), 1)
	if _, err := r.Run(wf, Scenario{}, 0); err == nil {
		t.Error("0 reps accepted")
	}
	if _, err := r.Run(wf, Scenario{StagedFraction: 2}, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestRunOnceMatchesRunRep(t *testing.T) {
	wf := swarpWF(1, 32)
	sc := Scenario{StagedFraction: 1, IntermediatesToBB: true}
	r := NewRunner(CoriPrivate(1), 5)
	tr, err := r.RunOnce(wf, sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(wf, sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan() != res.Makespans[2] {
		t.Errorf("RunOnce(rep=2) = %v, Run rep 2 = %v", tr.Makespan(), res.Makespans[2])
	}
}

func TestSummitUsesOnNodeBBs(t *testing.T) {
	wf := swarpWF(1, 32)
	r := NewRunner(Summit(2), 1)
	tr, err := r.RunOnce(wf, Scenario{StagedFraction: 1, IntermediatesToBB: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan() <= 0 {
		t.Fatal("empty run")
	}
}
