package testbed

import (
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
)

// The testbed's ground-truth SWarp characteristics: the "true" sequential
// compute work of each task, from which the anchor observation times quoted
// in internal/swarp emerge once the profile's scaling model and I/O costs
// are applied. The lightweight simulator never sees these numbers — it
// estimates work through Eq. 4 from observed times, exactly as the paper
// does with real measurements.
var (
	// TrueResampleWork is ~35 s of sequential compute at Cori core speed.
	TrueResampleWork = units.Flops(35.0 * 36.80e9)
	// TrueCombineWork is ~10 s of sequential compute at Cori core speed.
	TrueCombineWork = units.Flops(10.0 * 36.80e9)
)

// realPFS returns the testbed's "real" Lustre behavior: noticeably faster
// than the conservative Table-I calibration value of 100 MB/s. This gap is
// one of the deliberate error sources between ground truth and simulator
// (the paper: "we have come across several documents that provided
// inconsistent information" about these bandwidths).
func realPFS() platform.StorageConfig {
	return platform.StorageConfig{
		NetworkBW: 1.0 * units.GBps,
		DiskBW:    150 * units.MBps,
		StreamCap: 120 * units.MBps,
	}
}

// CoriPrivate is the synthetic Cori machine with a private-mode DataWarp
// allocation: cheap per-file operations, moderate variability.
func CoriPrivate(nodes int) Profile {
	cfg := platform.Cori(nodes, platform.BBPrivate)
	cfg.PFS = realPFS()
	return Profile{
		Name:     "cori-private",
		Platform: cfg,

		BBReadLatency:     0.02,
		BBWriteLatency:    0.05,
		StageWriteLatency: 0.05,
		BBMetaPenalty:     0.002,

		PFSReadLatency:  0.03,
		PFSWriteLatency: 0.05,
		PFSMetaPenalty:  0.002,

		IONoiseCV:      0.08,
		ComputeNoiseCV: 0.02,
		LoadNoiseCV:    0.05,

		Alpha:        map[string]float64{"resample": 0.25, "combine": 0.60},
		GammaPerCore: map[string]float64{"resample": 0.01, "combine": 0.05},
	}
}

// CoriStriped is the synthetic Cori machine with a striped DataWarp
// allocation. Striping is optimized for N:1 access to large shared files;
// on the studied workflows' 1:N many-small-files pattern its per-file
// metadata cost collapses the effective per-stream bandwidth, making task
// I/O one to two orders of magnitude slower than private mode (paper
// Fig. 5), with the largest run-to-run variability (paper Fig. 8) and the
// unexplained stage-in anomaly at 75% staged (paper Fig. 4).
func CoriStriped(nodes int) Profile {
	cfg := platform.Cori(nodes, platform.BBStriped)
	cfg.PFS = realPFS()
	return Profile{
		Name:     "cori-striped",
		Platform: cfg,

		BBReadLatency:     1.2,
		BBWriteLatency:    1.5,
		StageWriteLatency: 0.3,
		BBMetaPenalty:     0.03,

		PFSReadLatency:  0.03,
		PFSWriteLatency: 0.05,
		PFSMetaPenalty:  0.002,

		// Metadata-bound collapse on small files (only task I/O; stage-in
		// transfers stream efficiently and keep the platform stream cap).
		SmallFileStreamCap: 0.25 * units.MBps,
		SmallFileThreshold: 100 * units.MiB,

		// The reproducible stage-in anomaly around 75% staged.
		AnomalyLow:    0.70,
		AnomalyHigh:   0.80,
		AnomalyFactor: 1.8,

		IONoiseCV:      0.15,
		ComputeNoiseCV: 0.02,
		LoadNoiseCV:    0.15,

		Alpha:        map[string]float64{"resample": 0.25, "combine": 0.60},
		GammaPerCore: map[string]float64{"resample": 0.02, "combine": 0.06},
	}
}

// Summit is the synthetic Summit machine: node-local NVMe burst buffers
// with negligible latency and the most stable performance of the three
// configurations.
func Summit(nodes int) Profile {
	cfg := platform.Summit(nodes)
	cfg.PFS = realPFS()
	return Profile{
		Name:     "summit",
		Platform: cfg,

		BBReadLatency:     0.002,
		BBWriteLatency:    0.04,
		StageWriteLatency: 0.01,
		BBMetaPenalty:     0.0002,

		PFSReadLatency:  0.03,
		PFSWriteLatency: 0.05,
		PFSMetaPenalty:  0.002,

		IONoiseCV:      0.01,
		ComputeNoiseCV: 0.01,
		LoadNoiseCV:    0.01,

		Alpha:        map[string]float64{"resample": 0.15, "combine": 0.60},
		GammaPerCore: map[string]float64{"resample": 0.005, "combine": 0.04},
	}
}

// Profiles returns the three synthetic machines keyed by the names the
// command-line tools use.
func Profiles(nodes int) map[string]Profile {
	return map[string]Profile{
		"cori-private": CoriPrivate(nodes),
		"cori-striped": CoriStriped(nodes),
		"summit":       Summit(nodes),
	}
}
